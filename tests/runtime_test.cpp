/**
 * @file
 * Tests for the host runtime: DMA model, device memory, accelerator
 * sessions with timing accounting, and the paper-literal API
 * (configure_mem / run_genesis / check_genesis / wait_genesis /
 * genesis_flush).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "base/logging.h"
#include "base/trace.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/reducer.h"
#include "runtime/api.h"
#include "runtime/batch.h"
#include "table/column.h"

namespace genesis::runtime {
namespace {

TEST(Dma, TransferTimeScalesWithBytes)
{
    DmaConfig cfg = DmaConfig::pcie3();
    double one_mb = transferSeconds(cfg, 1 << 20);
    double two_mb = transferSeconds(cfg, 2 << 20);
    EXPECT_GT(two_mb, one_mb);
    EXPECT_NEAR(two_mb - cfg.perTransferLatency,
                2 * (one_mb - cfg.perTransferLatency), 1e-12);
    EXPECT_DOUBLE_EQ(transferSeconds(cfg, 0), 0.0);
}

TEST(Dma, Pcie4IsFaster)
{
    uint64_t bytes = 100 << 20;
    EXPECT_LT(transferSeconds(DmaConfig::pcie4(), bytes),
              transferSeconds(DmaConfig::pcie3(), bytes));
}

TEST(DeviceMemory, UploadDecodesColumn)
{
    DeviceMemory mem;
    table::Column col("POS", table::DataType::UInt32);
    col.appendScalar(100);
    col.appendScalar(258);
    auto *buf = mem.upload("POS", col);
    ASSERT_EQ(buf->elements.size(), 2u);
    EXPECT_EQ(buf->elements[0], 100);
    EXPECT_EQ(buf->elements[1], 258);
    EXPECT_EQ(buf->elemSizeBytes, 4u);
    EXPECT_EQ(buf->rowLengths, (std::vector<uint32_t>{1, 1}));
    EXPECT_FALSE(buf->isOutput);
}

TEST(DeviceMemory, AllocationsGetDistinctAlignedAddresses)
{
    DeviceMemory mem;
    auto *a = mem.allocate("a", 4);
    auto *b = mem.allocate("b", 4);
    EXPECT_NE(a->baseAddr, b->baseAddr);
    EXPECT_EQ(a->baseAddr % DeviceMemory::kAlignment, 0u);
    EXPECT_EQ(b->baseAddr % DeviceMemory::kAlignment, 0u);
    EXPECT_TRUE(a->isOutput);
}

TEST(DeviceMemory, FindByName)
{
    DeviceMemory mem;
    mem.allocate("x", 1);
    EXPECT_NE(mem.find("x"), nullptr);
    EXPECT_EQ(mem.find("y"), nullptr);
}

TEST(Session, TimingSplitsHostDmaAccel)
{
    RuntimeConfig cfg;
    AcceleratorSession session(cfg);
    // DMA in.
    session.configureMem("in", {1, 2, 3}, {1, 1, 1}, 4);
    EXPECT_GT(session.timing().dmaSeconds, 0.0);
    // Host work.
    session.addHostSeconds(0.5);
    EXPECT_DOUBLE_EQ(session.timing().hostSeconds, 0.5);
}

TEST(Session, NonBlockingRunAndFlush)
{
    RuntimeConfig cfg;
    AcceleratorSession session(cfg);
    auto *in = session.configureMem("IN", {5, 6, 7}, {1, 1, 1}, 4);
    auto *out = session.configureOutput("OUT", 4);

    auto *q = session.sim().makeQueue("q");
    auto *sum_q = session.sim().makeQueue("sum");
    session.sim().make<modules::MemoryReader>(
        "rd", in, session.sim().memory().makePort(0), q,
        modules::MemoryReaderConfig{});
    modules::ReducerConfig red;
    red.op = modules::ReduceOp::Sum;
    session.sim().make<modules::Reducer>("sum", q, sum_q, red);
    modules::MemoryWriterConfig wr;
    session.sim().make<modules::MemoryWriter>(
        "wr", out, session.sim().memory().makePort(0), sum_q, wr);

    session.start();
    session.wait();
    EXPECT_TRUE(session.check());
    EXPECT_GT(session.timing().accelSeconds, 0.0);

    const auto *flushed = session.flush("OUT");
    ASSERT_EQ(flushed->elements.size(), 1u);
    EXPECT_EQ(flushed->elements[0], 18);
}

TEST(Session, FlushUnknownBufferFatal)
{
    AcceleratorSession session{RuntimeConfig{}};
    EXPECT_THROW(session.flush("nope"), FatalError);
}

/** Wire IN -> sum Reducer -> OUT into a session (test helper). */
void
wireSumPipeline(AcceleratorSession &session, std::vector<int64_t> values)
{
    std::vector<uint32_t> lens(values.size(), 1);
    auto *in = session.configureMem("IN", std::move(values),
                                    std::move(lens), 4);
    auto *out = session.configureOutput("OUT", 4);
    auto *q = session.sim().makeQueue("q");
    auto *sum_q = session.sim().makeQueue("sum");
    session.sim().make<modules::MemoryReader>(
        "rd", in, session.sim().memory().makePort(0), q,
        modules::MemoryReaderConfig{});
    modules::ReducerConfig red;
    red.op = modules::ReduceOp::Sum;
    session.sim().make<modules::Reducer>("sum", q, sum_q, red);
    modules::MemoryWriterConfig wr;
    session.sim().make<modules::MemoryWriter>(
        "wr", out, session.sim().memory().makePort(0), sum_q, wr);
}

TEST(Session, CheckPollsCompletionWithoutBlocking)
{
    AcceleratorSession session{RuntimeConfig{}};
    wireSumPipeline(session, {5, 6, 7});
    session.start();
    // Poll from the host thread while the worker advances the sim; the
    // completion flag is published atomically so this never races.
    while (!session.check())
        std::this_thread::yield();
    const auto *flushed = session.flush("OUT");
    ASSERT_EQ(flushed->elements.size(), 1u);
    EXPECT_EQ(flushed->elements[0], 18);
}

TEST(Session, AccelTimeCreditedExactlyOnceAcrossJoinPaths)
{
    // flush() implies wait(): the accelerator seconds are credited even
    // when the caller never waits explicitly.
    AcceleratorSession session{RuntimeConfig{}};
    wireSumPipeline(session, {1, 2, 3});
    session.start();
    session.flush("OUT");
    double credited = session.timing().accelSeconds;
    EXPECT_GT(credited, 0.0);
    // Further joins (explicit or via the destructor) must not re-credit.
    session.wait();
    session.wait();
    EXPECT_DOUBLE_EQ(session.timing().accelSeconds, credited);
}

TEST(Timing, BreakdownPercentagesAndAccumulate)
{
    TimingBreakdown t;
    t.hostSeconds = 1.0;
    t.dmaSeconds = 2.0;
    t.accelSeconds = 1.0;
    EXPECT_DOUBLE_EQ(t.total(), 4.0);
    std::string s = t.str();
    EXPECT_NE(s.find("50.00%"), std::string::npos);

    TimingBreakdown u;
    u.hostSeconds = 1.0;
    t += u;
    EXPECT_DOUBLE_EQ(t.hostSeconds, 2.0);
}

// --- Paper-literal API (Section III-E) ------------------------------------

/**
 * A minimal image: one reader streaming "QUAL" (uint8 scalars) into a
 * whole-stream sum Reducer and a writer producing the "SUM" column.
 */
void
sumImage(AcceleratorSession &session,
         const std::function<modules::ColumnBuffer *(const std::string &)>
             &input)
{
    auto *in = input("QUAL");
    auto *out = session.configureOutput("SUM", 4);
    auto *q = session.sim().makeQueue("q");
    auto *sum_q = session.sim().makeQueue("sum");
    session.sim().make<modules::MemoryReader>(
        "rd", in, session.sim().memory().makePort(0), q,
        modules::MemoryReaderConfig{});
    modules::ReducerConfig red;
    red.op = modules::ReduceOp::Sum;
    session.sim().make<modules::Reducer>("red", q, sum_q, red);
    session.sim().make<modules::MemoryWriter>(
        "wr", out, session.sim().memory().makePort(0), sum_q,
        modules::MemoryWriterConfig{});
}

class PaperApi : public ::testing::Test
{
  protected:
    void SetUp() override { genesis_load_image(sumImage, 2); }
    void TearDown() override { genesis_unload_image(); }
};

TEST_F(PaperApi, EndToEndFlow)
{
    uint8_t quals[4] = {10, 20, 30, 40};
    uint32_t sum_out = 0;

    configure_mem(quals, 1, 4, "QUAL", 0);
    configure_mem(&sum_out, 4, 1, "SUM", 0);
    run_genesis(0);
    wait_genesis(0);
    EXPECT_TRUE(check_genesis(0));
    genesis_flush(0);
    EXPECT_EQ(sum_out, 100u);

    auto timing = genesis_timing(0);
    EXPECT_GT(timing.dmaSeconds, 0.0);
    EXPECT_GT(timing.accelSeconds, 0.0);
}

TEST_F(PaperApi, PipelinesAreIndependent)
{
    uint8_t quals0[2] = {1, 2};
    uint8_t quals1[3] = {10, 10, 10};
    uint32_t out0 = 0, out1 = 0;

    configure_mem(quals0, 1, 2, "QUAL", 0);
    configure_mem(&out0, 4, 1, "SUM", 0);
    configure_mem(quals1, 1, 3, "QUAL", 1);
    configure_mem(&out1, 4, 1, "SUM", 1);

    run_genesis(0);
    run_genesis(1);
    genesis_flush(0);
    genesis_flush(1);
    EXPECT_EQ(out0, 3u);
    EXPECT_EQ(out1, 30u);
}

TEST_F(PaperApi, ErrorsOnMisuse)
{
    EXPECT_THROW(run_genesis(7), FatalError);     // bad pipeline id
    EXPECT_THROW(wait_genesis(0), FatalError);    // before run
    uint8_t dummy = 0;
    EXPECT_THROW(configure_mem(&dummy, 0, 1, "X", 0), FatalError);
    // Running without the required column configured.
    EXPECT_THROW(run_genesis(0), FatalError);
}

TEST(PaperApiUnloaded, CallsWithoutImageFatal)
{
    uint8_t dummy = 0;
    EXPECT_THROW(configure_mem(&dummy, 1, 1, "X", 0), FatalError);
    EXPECT_THROW(genesis_load_image(sumImage, 0), FatalError);
}

// --- Host data decode / flush encode --------------------------------------

/** Like sumImage but with a 64-bit SUM column, so the full sign-extended
 *  sum survives the flush (narrow outputs would truncate the evidence). */
void
sumImage64(AcceleratorSession &session,
           const std::function<
               modules::ColumnBuffer *(const std::string &)> &input)
{
    auto *in = input("QUAL");
    auto *out = session.configureOutput("SUM", 8);
    auto *q = session.sim().makeQueue("q");
    auto *sum_q = session.sim().makeQueue("sum");
    session.sim().make<modules::MemoryReader>(
        "rd", in, session.sim().memory().makePort(0), q,
        modules::MemoryReaderConfig{});
    modules::ReducerConfig red;
    red.op = modules::ReduceOp::Sum;
    session.sim().make<modules::Reducer>("red", q, sum_q, red);
    session.sim().make<modules::MemoryWriter>(
        "wr", out, session.sim().memory().makePort(0), sum_q,
        modules::MemoryWriterConfig{});
}

/** Sum three negatives of host type T through the accelerator. A pure
 *  round-trip cannot detect missing sign extension (truncation restores
 *  the low bytes); arithmetic on the decoded values can. */
template <typename T>
void
expectSignedSum()
{
    // min()+8 keeps the sign bit set at every width without the sum
    // overflowing int64 (the accumulator type) in the T == int64 case.
    T vals[3] = {static_cast<T>(-1), static_cast<T>(-5),
                 static_cast<T>(std::numeric_limits<T>::min() + 8)};
    int64_t expected = -1 - 5 +
        (static_cast<int64_t>(std::numeric_limits<T>::min()) + 8);
    int64_t out = 0;

    genesis_load_image(sumImage64, 1);
    configure_mem(vals, sizeof(T), 3, "QUAL", 0);
    configure_mem(&out, 8, 1, "SUM", 0);
    run_genesis(0);
    genesis_flush(0);
    genesis_unload_image();
    EXPECT_EQ(out, expected) << "elemsize " << sizeof(T);
}

TEST(HostDecode, SignExtendsNarrowElements)
{
    expectSignedSum<int8_t>();
    expectSignedSum<int16_t>();
    expectSignedSum<int32_t>();
    expectSignedSum<int64_t>();
}

TEST(HostDecode, RoundTripPreservesBytesAtEveryElemsize)
{
    for (int es : {1, 2, 4, 8}) {
        // A pass-through image: reader straight into writer.
        auto copy_image =
            [es](AcceleratorSession &session,
                 const std::function<
                     modules::ColumnBuffer *(const std::string &)>
                     &input) {
                auto *in = input("VALS");
                auto *out = session.configureOutput(
                    "COPY", static_cast<uint32_t>(es));
                auto *q = session.sim().makeQueue("q");
                session.sim().make<modules::MemoryReader>(
                    "rd", in, session.sim().memory().makePort(0), q,
                    modules::MemoryReaderConfig{});
                session.sim().make<modules::MemoryWriter>(
                    "wr", out, session.sim().memory().makePort(0), q,
                    modules::MemoryWriterConfig{});
            };
        genesis_load_image(copy_image, 1);

        // 1, -1, min, max of the es-byte signed type, little-endian.
        const int64_t min_v = es < 8
            ? -(1ll << (8 * es - 1))
            : std::numeric_limits<int64_t>::min();
        const int64_t max_v = es < 8
            ? (1ll << (8 * es - 1)) - 1
            : std::numeric_limits<int64_t>::max();
        const int64_t values[4] = {1, -1, min_v, max_v};
        std::vector<uint8_t> src(4 * static_cast<size_t>(es));
        for (size_t i = 0; i < 4; ++i) {
            for (int b = 0; b < es; ++b)
                src[i * static_cast<size_t>(es) +
                    static_cast<size_t>(b)] =
                    static_cast<uint8_t>(
                        (static_cast<uint64_t>(values[i]) >> (8 * b)) &
                        0xff);
        }
        std::vector<uint8_t> dst(src.size(), 0xAA);

        configure_mem(src.data(), es, 4, "VALS", 0);
        configure_mem(dst.data(), es, 4, "COPY", 0);
        run_genesis(0);
        genesis_flush(0);
        genesis_unload_image();
        EXPECT_EQ(src, dst) << "elemsize " << es;
    }
}

TEST_F(PaperApi, FlushTruncationWarnsButKeepsPrefix)
{
    uint8_t quals[4] = {10, 20, 30, 40};
    uint32_t sum_out = 0xdeadbeef;

    configure_mem(quals, 1, 4, "QUAL", 0);
    // Host buffer holds zero elements: the produced sum must be dropped
    // loudly (a warning), never silently.
    configure_mem(&sum_out, 4, 0, "SUM", 0);
    run_genesis(0);
    genesis_flush(0);
    EXPECT_EQ(sum_out, 0xdeadbeefu); // nothing written past the buffer
}

TEST(PaperApiStrict, FlushTruncationFatalUnderStrictFlush)
{
    RuntimeConfig cfg;
    cfg.strictFlush = true;
    genesis_load_image(sumImage, 1, cfg);
    uint8_t quals[2] = {1, 2};
    uint32_t sum_out = 0;
    configure_mem(quals, 1, 2, "QUAL", 0);
    configure_mem(&sum_out, 4, 0, "SUM", 0);
    run_genesis(0);
    EXPECT_THROW(genesis_flush(0), FatalError);
    genesis_unload_image();
}

// --- Concurrent multi-pipeline drivers ------------------------------------

/** The qual values pipeline p streams in round r (length varies too). */
std::vector<uint8_t>
concurrentQuals(int pipeline, int round)
{
    std::vector<uint8_t> quals(3 + static_cast<size_t>(pipeline));
    for (size_t i = 0; i < quals.size(); ++i) {
        quals[i] = static_cast<uint8_t>(
            (pipeline * 16 + round * 4 + static_cast<int>(i)) & 0x7f);
    }
    return quals;
}

TEST(PaperApiConcurrent, FourPipelinesMatchSequentialBitForBit)
{
    constexpr int kPipelines = 4;
    constexpr int kRounds = 3;

    // Sequential reference run.
    uint32_t expected[kPipelines][kRounds] = {};
    genesis_load_image(sumImage, kPipelines);
    for (int p = 0; p < kPipelines; ++p) {
        for (int r = 0; r < kRounds; ++r) {
            auto quals = concurrentQuals(p, r);
            uint32_t out = 0;
            configure_mem(quals.data(), 1,
                          static_cast<int>(quals.size()), "QUAL", p);
            configure_mem(&out, 4, 1, "SUM", p);
            run_genesis(p);
            genesis_flush(p);
            expected[p][r] = out;
        }
    }
    genesis_unload_image();

    // Concurrent run: one host thread per pipeline, all rounds.
    uint32_t actual[kPipelines][kRounds] = {};
    genesis_load_image(sumImage, kPipelines);
    std::vector<std::thread> drivers;
    for (int p = 0; p < kPipelines; ++p) {
        drivers.emplace_back([p, &actual] {
            for (int r = 0; r < kRounds; ++r) {
                auto quals = concurrentQuals(p, r);
                uint32_t out = 0;
                configure_mem(quals.data(), 1,
                              static_cast<int>(quals.size()), "QUAL",
                              p);
                configure_mem(&out, 4, 1, "SUM", p);
                run_genesis(p);
                while (!check_genesis(p))
                    std::this_thread::yield();
                wait_genesis(p);
                genesis_flush(p);
                actual[p][r] = out;
                EXPECT_GT(genesis_timing(p).accelSeconds, 0.0);
            }
        });
    }
    for (auto &t : drivers)
        t.join();
    genesis_unload_image();

    for (int p = 0; p < kPipelines; ++p) {
        for (int r = 0; r < kRounds; ++r)
            EXPECT_EQ(actual[p][r], expected[p][r])
                << "pipeline " << p << " round " << r;
    }
}

TEST(PaperApiConcurrent, SharedTraceSinkCollectsEveryPipeline)
{
    constexpr int kPipelines = 4;
    TraceSink sink;
    genesis_load_image(sumImage, kPipelines);
    genesis_trace(&sink);

    std::vector<std::thread> drivers;
    for (int p = 0; p < kPipelines; ++p) {
        drivers.emplace_back([p] {
            auto quals = concurrentQuals(p, 0);
            uint32_t out = 0;
            configure_mem(quals.data(), 1,
                          static_cast<int>(quals.size()), "QUAL", p);
            configure_mem(&out, 4, 1, "SUM", p);
            run_genesis(p);
            genesis_flush(p);
        });
    }
    for (auto &t : drivers)
        t.join();
    genesis_unload_image();

    // Each concurrently run pipeline recorded privately and was merged
    // into the shared sink as its own trace process.
    sink.finish();
    EXPECT_EQ(sink.numProcesses(), 4u);
    EXPECT_FALSE(sink.spans().empty());
}

// --- BatchRunner -----------------------------------------------------------

TEST(Batch, ShardsAcrossLanesMergeResultsAndTiming)
{
    constexpr size_t kShards = 7;
    BatchConfig cfg;
    cfg.numLanes = 3;
    BatchRunner runner(cfg);

    int64_t results[kShards] = {};
    BatchStats stats = runner.run(
        kShards,
        [](size_t shard, AcceleratorSession &session) {
            int64_t base = static_cast<int64_t>(shard) * 10;
            wireSumPipeline(session, {base + 1, base + 2, base + 3});
        },
        [&results](size_t shard, AcceleratorSession &session) {
            const auto *flushed = session.flush("OUT");
            ASSERT_EQ(flushed->elements.size(), 1u);
            results[shard] = flushed->elements[0];
        });

    for (size_t s = 0; s < kShards; ++s)
        EXPECT_EQ(results[s], static_cast<int64_t>(s) * 30 + 6);
    EXPECT_EQ(stats.shards, kShards);
    EXPECT_GT(stats.totalCycles, 0u);
    EXPECT_GT(stats.timing.accelSeconds, 0.0);
    EXPECT_GT(stats.timing.dmaSeconds, 0.0);
    EXPECT_GE(stats.wallSeconds, 0.0);
}

TEST(Batch, ShardTracesMergeIntoSharedSink)
{
    TraceSink sink;
    BatchConfig cfg;
    cfg.numLanes = 2;
    cfg.runtime.trace = &sink;
    cfg.runtime.traceLabel = "batch";
    BatchRunner runner(cfg);

    runner.run(
        3,
        [](size_t, AcceleratorSession &session) {
            wireSumPipeline(session, {1, 2, 3});
        },
        [](size_t, AcceleratorSession &session) {
            session.flush("OUT");
        });

    sink.finish();
    // One trace process per shard, adopted as each shard retired.
    EXPECT_EQ(sink.numProcesses(), 3u);
    EXPECT_FALSE(sink.spans().empty());
}

} // namespace
} // namespace genesis::runtime

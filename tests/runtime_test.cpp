/**
 * @file
 * Tests for the host runtime: DMA model, device memory, accelerator
 * sessions with timing accounting, and the paper-literal API
 * (configure_mem / run_genesis / check_genesis / wait_genesis /
 * genesis_flush).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "base/logging.h"
#include "base/trace.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/reducer.h"
#include "runtime/api.h"
#include "runtime/batch.h"
#include "table/column.h"

namespace genesis::runtime {
namespace {

TEST(Dma, TransferTimeScalesWithBytes)
{
    DmaConfig cfg = DmaConfig::pcie3();
    double one_mb = transferSeconds(cfg, 1 << 20);
    double two_mb = transferSeconds(cfg, 2 << 20);
    EXPECT_GT(two_mb, one_mb);
    EXPECT_NEAR(two_mb - cfg.perTransferLatency,
                2 * (one_mb - cfg.perTransferLatency), 1e-12);
    EXPECT_DOUBLE_EQ(transferSeconds(cfg, 0), 0.0);
}

TEST(Dma, Pcie4IsFaster)
{
    uint64_t bytes = 100 << 20;
    EXPECT_LT(transferSeconds(DmaConfig::pcie4(), bytes),
              transferSeconds(DmaConfig::pcie3(), bytes));
}

TEST(DeviceMemory, UploadDecodesColumn)
{
    DeviceMemory mem;
    table::Column col("POS", table::DataType::UInt32);
    col.appendScalar(100);
    col.appendScalar(258);
    auto *buf = mem.upload("POS", col);
    ASSERT_EQ(buf->elements.size(), 2u);
    EXPECT_EQ(buf->elements[0], 100);
    EXPECT_EQ(buf->elements[1], 258);
    EXPECT_EQ(buf->elemSizeBytes, 4u);
    EXPECT_EQ(buf->rowLengths, (std::vector<uint32_t>{1, 1}));
    EXPECT_FALSE(buf->isOutput);
}

TEST(DeviceMemory, AllocationsGetDistinctAlignedAddresses)
{
    DeviceMemory mem;
    auto *a = mem.allocate("a", 4);
    auto *b = mem.allocate("b", 4);
    EXPECT_NE(a->baseAddr, b->baseAddr);
    EXPECT_EQ(a->baseAddr % DeviceMemory::kAlignment, 0u);
    EXPECT_EQ(b->baseAddr % DeviceMemory::kAlignment, 0u);
    EXPECT_TRUE(a->isOutput);
}

TEST(DeviceMemory, FindByName)
{
    DeviceMemory mem;
    mem.allocate("x", 1);
    EXPECT_NE(mem.find("x"), nullptr);
    EXPECT_EQ(mem.find("y"), nullptr);
}

TEST(DeviceMemory, DuplicateUploadReplacesInPlace)
{
    DeviceMemory mem;
    auto *first = mem.upload("x", {1, 2, 3}, {1, 1, 1}, 8);
    const uint64_t used_after_first = mem.allocatedBytes();
    auto *second = mem.upload("x", {9}, {1}, 8);
    // Replace in place: module pointers to the buffer stay valid and
    // find() sees the fresh image, not a stale first upload.
    EXPECT_EQ(second, first);
    EXPECT_EQ(mem.find("x"), first);
    EXPECT_EQ(first->elements, (std::vector<int64_t>{9}));
    EXPECT_EQ(mem.buffers().size(), 1u);
    EXPECT_LE(mem.allocatedBytes(), used_after_first);
}

TEST(DeviceMemory, DuplicateAllocateReplacesInPlace)
{
    DeviceMemory mem;
    auto *first = mem.allocate("out", 4);
    first->appendRow({42});
    auto *second = mem.allocate("out", 8);
    EXPECT_EQ(second, first);
    EXPECT_TRUE(first->elements.empty());
    EXPECT_EQ(first->elemSizeBytes, 8u);
    EXPECT_EQ(mem.buffers().size(), 1u);
}

TEST(DeviceMemory, NegativeValuesRoundTripAtEveryElemSize)
{
    struct Case {
        table::DataType type;
        int64_t value;
    };
    const Case cases[] = {
        {table::DataType::UInt8, -1},
        {table::DataType::UInt16, -300},
        {table::DataType::UInt32, -70000},
        {table::DataType::Int64, -5000000000LL},
    };
    for (const auto &c : cases) {
        DeviceMemory mem;
        table::Column col("V", c.type);
        col.appendScalar(c.value);
        col.appendScalar(17);
        auto *buf = mem.upload("V", col);
        ASSERT_EQ(buf->elements.size(), 2u);
        // The device element type is int64: sub-8-byte elements must
        // sign-extend, not zero-extend into huge positives.
        EXPECT_EQ(buf->elements[0], c.value)
            << table::dataTypeName(c.type);
        EXPECT_EQ(buf->elements[1], 17) << table::dataTypeName(c.type);
    }
}

TEST(DeviceMemory, ZeroByteReservationsGetDistinctAddresses)
{
    DeviceMemory mem;
    auto *a = mem.allocate("a", 4, 0);
    auto *b = mem.allocate("b", 4, 0);
    EXPECT_NE(a->baseAddr, b->baseAddr);
    EXPECT_EQ(mem.allocatedBytes(), 2 * DeviceMemory::kAlignment);
    auto *c = mem.upload("c", {}, {}, 8); // zero-element column
    EXPECT_NE(c->baseAddr, a->baseAddr);
    EXPECT_NE(c->baseAddr, b->baseAddr);
}

TEST(DeviceMemory, ReserveOverflowFailsLoudly)
{
    DeviceMemory mem;
    EXPECT_THROW(
        mem.allocate("huge", 8, std::numeric_limits<uint64_t>::max()),
        FatalError);
}

TEST(DeviceMemory, CapacityIsEnforced)
{
    DeviceMemory mem(1 << 20); // 1 MB card
    EXPECT_THROW(mem.allocate("big", 8, 2 << 20), FatalError);
    mem.allocate("fits", 8, 1 << 20); // exactly the card
    EXPECT_THROW(mem.allocate("more", 8, 1), FatalError);
}

TEST(DeviceMemory, ReleasedSpaceIsReused)
{
    DeviceMemory mem(16 * DeviceMemory::kAlignment);
    auto *a = mem.allocate("a", 8, DeviceMemory::kAlignment);
    const uint64_t addr = a->baseAddr;
    mem.allocate("b", 8, DeviceMemory::kAlignment);
    ASSERT_TRUE(mem.release("a"));
    EXPECT_EQ(mem.find("a"), nullptr);
    auto *c = mem.allocate("c", 8, DeviceMemory::kAlignment);
    EXPECT_EQ(c->baseAddr, addr); // first fit reuses the freed hole
    EXPECT_EQ(c->baseAddr % DeviceMemory::kAlignment, 0u);
    EXPECT_FALSE(mem.release("never-existed"));
}

TEST(DeviceMemory, FreedNeighboursCoalesceForLargerAllocations)
{
    DeviceMemory mem(4 * DeviceMemory::kAlignment);
    mem.allocate("a", 8, DeviceMemory::kAlignment);
    mem.allocate("b", 8, DeviceMemory::kAlignment);
    mem.allocate("c", 8, DeviceMemory::kAlignment);
    mem.allocate("d", 8, DeviceMemory::kAlignment); // card is now full
    EXPECT_THROW(mem.allocate("e", 8, 1), FatalError);
    mem.release("a");
    mem.release("b");
    // The two freed granules coalesce into one hole big enough for a
    // double-size buffer.
    auto *ab = mem.allocate("ab", 8, 2 * DeviceMemory::kAlignment);
    EXPECT_EQ(ab->baseAddr, 0u);
}

TEST(DeviceMemory, CacheHitSkipsUploadAndIsBitIdentical)
{
    DeviceMemory mem;
    const std::vector<int64_t> data{1, -2, 3};
    const std::vector<uint32_t> rows{1, 1, 1};
    auto cold = mem.acquireCached("t.QUAL", data, rows, 4);
    ASSERT_FALSE(cold.hit);
    mem.unpin("t.QUAL");
    // Resident key: the passed data is ignored, the cached image wins.
    auto warm = mem.acquireCached("t.QUAL", {}, {}, 4);
    EXPECT_TRUE(warm.hit);
    EXPECT_EQ(warm.buffer, cold.buffer);
    EXPECT_EQ(warm.buffer->elements, data);
    EXPECT_EQ(warm.buffer->rowLengths, rows);
    mem.unpin("t.QUAL");
    auto stats = mem.cacheStats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(DeviceMemory, CacheEvictsLeastRecentlyUsed)
{
    DeviceMemory mem;
    mem.setCacheCapacity(2 * DeviceMemory::kAlignment);
    auto insert = [&](const char *key) {
        mem.acquireCached(key, {1}, {1}, 8);
        mem.unpin(key);
    };
    insert("k1");
    insert("k2");
    mem.acquireCached("k1", {}, {}, 8); // touch k1: k2 is now the LRU
    mem.unpin("k1");
    insert("k3");
    EXPECT_EQ(mem.cacheStats().evictions, 1u);
    EXPECT_TRUE(mem.acquireCached("k1", {1}, {1}, 8).hit);
    mem.unpin("k1");
    EXPECT_FALSE(mem.acquireCached("k2", {1}, {1}, 8).hit); // evicted
    mem.unpin("k2");
}

TEST(DeviceMemory, PinnedColumnsAreNeverEvicted)
{
    DeviceMemory mem;
    mem.setCacheCapacity(DeviceMemory::kAlignment); // one-entry cache
    auto a = mem.acquireCached("a", {1}, {1}, 8);   // stays pinned
    ASSERT_FALSE(a.hit);
    EXPECT_THROW(mem.acquireCached("b", {2}, {1}, 8), FatalError);
    mem.unpin("a");
    auto b = mem.acquireCached("b", {2}, {1}, 8); // now a is evictable
    EXPECT_FALSE(b.hit);
    EXPECT_EQ(mem.cacheStats().evictions, 1u);
    mem.unpin("b");
}

TEST(DeviceMemory, CachedColumnsRejectDirectReleaseAndReupload)
{
    DeviceMemory mem;
    mem.acquireCached("k", {1}, {1}, 8);
    EXPECT_THROW(mem.release("k"), FatalError);
    EXPECT_THROW(mem.upload("k", {2}, {1}, 8), FatalError);
    mem.unpin("k");
}

TEST(DeviceMemory, CacheKeyCannotShadowUncachedBuffer)
{
    DeviceMemory mem;
    mem.upload("x", {1}, {1}, 8);
    EXPECT_THROW(mem.acquireCached("x", {1}, {1}, 8), FatalError);
}

TEST(Session, TimingSplitsHostDmaAccel)
{
    RuntimeConfig cfg;
    AcceleratorSession session(cfg);
    // DMA in.
    session.configureMem("in", {1, 2, 3}, {1, 1, 1}, 4);
    EXPECT_GT(session.timing().dmaSeconds, 0.0);
    // Host work.
    session.addHostSeconds(0.5);
    EXPECT_DOUBLE_EQ(session.timing().hostSeconds, 0.5);
}

TEST(Session, NonBlockingRunAndFlush)
{
    RuntimeConfig cfg;
    AcceleratorSession session(cfg);
    auto *in = session.configureMem("IN", {5, 6, 7}, {1, 1, 1}, 4);
    auto *out = session.configureOutput("OUT", 4);

    auto *q = session.sim().makeQueue("q");
    auto *sum_q = session.sim().makeQueue("sum");
    session.sim().make<modules::MemoryReader>(
        "rd", in, session.sim().memory().makePort(0), q,
        modules::MemoryReaderConfig{});
    modules::ReducerConfig red;
    red.op = modules::ReduceOp::Sum;
    session.sim().make<modules::Reducer>("sum", q, sum_q, red);
    modules::MemoryWriterConfig wr;
    session.sim().make<modules::MemoryWriter>(
        "wr", out, session.sim().memory().makePort(0), sum_q, wr);

    session.start();
    session.wait();
    EXPECT_TRUE(session.check());
    EXPECT_GT(session.timing().accelSeconds, 0.0);

    const auto *flushed = session.flush("OUT");
    ASSERT_EQ(flushed->elements.size(), 1u);
    EXPECT_EQ(flushed->elements[0], 18);
}

TEST(Session, FlushUnknownBufferFatal)
{
    AcceleratorSession session{RuntimeConfig{}};
    EXPECT_THROW(session.flush("nope"), FatalError);
}

/** Wire IN -> sum Reducer -> OUT into a session (test helper). */
void
wireSumPipeline(AcceleratorSession &session, std::vector<int64_t> values)
{
    std::vector<uint32_t> lens(values.size(), 1);
    auto *in = session.configureMem("IN", std::move(values),
                                    std::move(lens), 4);
    auto *out = session.configureOutput("OUT", 4);
    auto *q = session.sim().makeQueue("q");
    auto *sum_q = session.sim().makeQueue("sum");
    session.sim().make<modules::MemoryReader>(
        "rd", in, session.sim().memory().makePort(0), q,
        modules::MemoryReaderConfig{});
    modules::ReducerConfig red;
    red.op = modules::ReduceOp::Sum;
    session.sim().make<modules::Reducer>("sum", q, sum_q, red);
    modules::MemoryWriterConfig wr;
    session.sim().make<modules::MemoryWriter>(
        "wr", out, session.sim().memory().makePort(0), sum_q, wr);
}

TEST(Session, CheckPollsCompletionWithoutBlocking)
{
    AcceleratorSession session{RuntimeConfig{}};
    wireSumPipeline(session, {5, 6, 7});
    session.start();
    // Poll from the host thread while the worker advances the sim; the
    // completion flag is published atomically so this never races.
    while (!session.check())
        std::this_thread::yield();
    const auto *flushed = session.flush("OUT");
    ASSERT_EQ(flushed->elements.size(), 1u);
    EXPECT_EQ(flushed->elements[0], 18);
}

TEST(Session, AccelTimeCreditedExactlyOnceAcrossJoinPaths)
{
    // flush() implies wait(): the accelerator seconds are credited even
    // when the caller never waits explicitly.
    AcceleratorSession session{RuntimeConfig{}};
    wireSumPipeline(session, {1, 2, 3});
    session.start();
    session.flush("OUT");
    double credited = session.timing().accelSeconds;
    EXPECT_GT(credited, 0.0);
    // Further joins (explicit or via the destructor) must not re-credit.
    session.wait();
    session.wait();
    EXPECT_DOUBLE_EQ(session.timing().accelSeconds, credited);
}

TEST(Session, SharedDeviceMemorySurvivesSession)
{
    DeviceMemory board;
    {
        AcceleratorSession session(RuntimeConfig{}, &board);
        session.configureMem("col", {7}, {1}, 8);
    }
    // Board-persistent memory is not torn down with the session.
    ASSERT_NE(board.find("col"), nullptr);
    EXPECT_EQ(board.find("col")->elements[0], 7);
    EXPECT_TRUE(board.release("col"));
}

TEST(Session, ConfigureMemCachedChargesDmaOnlyOnMiss)
{
    DeviceMemory board;
    RuntimeConfig cfg;

    AcceleratorSession cold_session(cfg, &board);
    auto cold = cold_session.configureMemCached("tbl.POS", {1, 2, 3},
                                                {1, 1, 1}, 4);
    EXPECT_FALSE(cold.hit);
    EXPECT_GT(cold_session.timing().dmaSeconds, 0.0);
    board.unpin("tbl.POS");

    AcceleratorSession warm_session(cfg, &board);
    auto warm = warm_session.configureMemCached("tbl.POS", {1, 2, 3},
                                                {1, 1, 1}, 4);
    EXPECT_TRUE(warm.hit);
    // The whole point of the cache: a resident column costs no DMA-in.
    EXPECT_DOUBLE_EQ(warm_session.timing().dmaSeconds, 0.0);
    EXPECT_EQ(warm.buffer, cold.buffer);
    EXPECT_EQ(warm.buffer->elements, cold.buffer->elements);
    board.unpin("tbl.POS");
}

TEST(Timing, BreakdownPercentagesAndAccumulate)
{
    TimingBreakdown t;
    t.hostSeconds = 1.0;
    t.dmaSeconds = 2.0;
    t.accelSeconds = 1.0;
    EXPECT_DOUBLE_EQ(t.total(), 4.0);
    std::string s = t.str();
    EXPECT_NE(s.find("50.00%"), std::string::npos);

    TimingBreakdown u;
    u.hostSeconds = 1.0;
    t += u;
    EXPECT_DOUBLE_EQ(t.hostSeconds, 2.0);
}

// --- Paper-literal API (Section III-E) ------------------------------------

/**
 * A minimal image: one reader streaming "QUAL" (uint8 scalars) into a
 * whole-stream sum Reducer and a writer producing the "SUM" column.
 */
void
sumImage(AcceleratorSession &session,
         const std::function<modules::ColumnBuffer *(const std::string &)>
             &input)
{
    auto *in = input("QUAL");
    auto *out = session.configureOutput("SUM", 4);
    auto *q = session.sim().makeQueue("q");
    auto *sum_q = session.sim().makeQueue("sum");
    session.sim().make<modules::MemoryReader>(
        "rd", in, session.sim().memory().makePort(0), q,
        modules::MemoryReaderConfig{});
    modules::ReducerConfig red;
    red.op = modules::ReduceOp::Sum;
    session.sim().make<modules::Reducer>("red", q, sum_q, red);
    session.sim().make<modules::MemoryWriter>(
        "wr", out, session.sim().memory().makePort(0), sum_q,
        modules::MemoryWriterConfig{});
}

class PaperApi : public ::testing::Test
{
  protected:
    void SetUp() override { genesis_load_image(sumImage, 2); }
    void TearDown() override { genesis_unload_image(); }
};

TEST_F(PaperApi, EndToEndFlow)
{
    uint8_t quals[4] = {10, 20, 30, 40};
    uint32_t sum_out = 0;

    configure_mem(quals, 1, 4, "QUAL", 0);
    configure_mem(&sum_out, 4, 1, "SUM", 0);
    run_genesis(0);
    wait_genesis(0);
    EXPECT_TRUE(check_genesis(0));
    genesis_flush(0);
    EXPECT_EQ(sum_out, 100u);

    auto timing = genesis_timing(0);
    EXPECT_GT(timing.dmaSeconds, 0.0);
    EXPECT_GT(timing.accelSeconds, 0.0);
}

TEST_F(PaperApi, PipelinesAreIndependent)
{
    uint8_t quals0[2] = {1, 2};
    uint8_t quals1[3] = {10, 10, 10};
    uint32_t out0 = 0, out1 = 0;

    configure_mem(quals0, 1, 2, "QUAL", 0);
    configure_mem(&out0, 4, 1, "SUM", 0);
    configure_mem(quals1, 1, 3, "QUAL", 1);
    configure_mem(&out1, 4, 1, "SUM", 1);

    run_genesis(0);
    run_genesis(1);
    genesis_flush(0);
    genesis_flush(1);
    EXPECT_EQ(out0, 3u);
    EXPECT_EQ(out1, 30u);
}

TEST_F(PaperApi, ErrorsOnMisuse)
{
    EXPECT_THROW(run_genesis(7), FatalError);     // bad pipeline id
    EXPECT_THROW(wait_genesis(0), FatalError);    // before run
    uint8_t dummy = 0;
    EXPECT_THROW(configure_mem(&dummy, 0, 1, "X", 0), FatalError);
    // Running without the required column configured.
    EXPECT_THROW(run_genesis(0), FatalError);
}

TEST(PaperApiUnloaded, CallsWithoutImageFatal)
{
    uint8_t dummy = 0;
    EXPECT_THROW(configure_mem(&dummy, 1, 1, "X", 0), FatalError);
    EXPECT_THROW(genesis_load_image(sumImage, 0), FatalError);
}

// --- Host data decode / flush encode --------------------------------------

/** Like sumImage but with a 64-bit SUM column, so the full sign-extended
 *  sum survives the flush (narrow outputs would truncate the evidence). */
void
sumImage64(AcceleratorSession &session,
           const std::function<
               modules::ColumnBuffer *(const std::string &)> &input)
{
    auto *in = input("QUAL");
    auto *out = session.configureOutput("SUM", 8);
    auto *q = session.sim().makeQueue("q");
    auto *sum_q = session.sim().makeQueue("sum");
    session.sim().make<modules::MemoryReader>(
        "rd", in, session.sim().memory().makePort(0), q,
        modules::MemoryReaderConfig{});
    modules::ReducerConfig red;
    red.op = modules::ReduceOp::Sum;
    session.sim().make<modules::Reducer>("red", q, sum_q, red);
    session.sim().make<modules::MemoryWriter>(
        "wr", out, session.sim().memory().makePort(0), sum_q,
        modules::MemoryWriterConfig{});
}

/** Sum three negatives of host type T through the accelerator. A pure
 *  round-trip cannot detect missing sign extension (truncation restores
 *  the low bytes); arithmetic on the decoded values can. */
template <typename T>
void
expectSignedSum()
{
    // min()+8 keeps the sign bit set at every width without the sum
    // overflowing int64 (the accumulator type) in the T == int64 case.
    T vals[3] = {static_cast<T>(-1), static_cast<T>(-5),
                 static_cast<T>(std::numeric_limits<T>::min() + 8)};
    int64_t expected = -1 - 5 +
        (static_cast<int64_t>(std::numeric_limits<T>::min()) + 8);
    int64_t out = 0;

    genesis_load_image(sumImage64, 1);
    configure_mem(vals, sizeof(T), 3, "QUAL", 0);
    configure_mem(&out, 8, 1, "SUM", 0);
    run_genesis(0);
    genesis_flush(0);
    genesis_unload_image();
    EXPECT_EQ(out, expected) << "elemsize " << sizeof(T);
}

TEST(HostDecode, SignExtendsNarrowElements)
{
    expectSignedSum<int8_t>();
    expectSignedSum<int16_t>();
    expectSignedSum<int32_t>();
    expectSignedSum<int64_t>();
}

TEST(HostDecode, RoundTripPreservesBytesAtEveryElemsize)
{
    for (int es : {1, 2, 4, 8}) {
        // A pass-through image: reader straight into writer.
        auto copy_image =
            [es](AcceleratorSession &session,
                 const std::function<
                     modules::ColumnBuffer *(const std::string &)>
                     &input) {
                auto *in = input("VALS");
                auto *out = session.configureOutput(
                    "COPY", static_cast<uint32_t>(es));
                auto *q = session.sim().makeQueue("q");
                session.sim().make<modules::MemoryReader>(
                    "rd", in, session.sim().memory().makePort(0), q,
                    modules::MemoryReaderConfig{});
                session.sim().make<modules::MemoryWriter>(
                    "wr", out, session.sim().memory().makePort(0), q,
                    modules::MemoryWriterConfig{});
            };
        genesis_load_image(copy_image, 1);

        // 1, -1, min, max of the es-byte signed type, little-endian.
        const int64_t min_v = es < 8
            ? -(1ll << (8 * es - 1))
            : std::numeric_limits<int64_t>::min();
        const int64_t max_v = es < 8
            ? (1ll << (8 * es - 1)) - 1
            : std::numeric_limits<int64_t>::max();
        const int64_t values[4] = {1, -1, min_v, max_v};
        std::vector<uint8_t> src(4 * static_cast<size_t>(es));
        for (size_t i = 0; i < 4; ++i) {
            for (int b = 0; b < es; ++b)
                src[i * static_cast<size_t>(es) +
                    static_cast<size_t>(b)] =
                    static_cast<uint8_t>(
                        (static_cast<uint64_t>(values[i]) >> (8 * b)) &
                        0xff);
        }
        std::vector<uint8_t> dst(src.size(), 0xAA);

        configure_mem(src.data(), es, 4, "VALS", 0);
        configure_mem(dst.data(), es, 4, "COPY", 0);
        run_genesis(0);
        genesis_flush(0);
        genesis_unload_image();
        EXPECT_EQ(src, dst) << "elemsize " << es;
    }
}

TEST_F(PaperApi, FlushTruncationWarnsButKeepsPrefix)
{
    uint8_t quals[4] = {10, 20, 30, 40};
    uint32_t sum_out = 0xdeadbeef;

    configure_mem(quals, 1, 4, "QUAL", 0);
    // Host buffer holds zero elements: the produced sum must be dropped
    // loudly (a warning), never silently.
    configure_mem(&sum_out, 4, 0, "SUM", 0);
    run_genesis(0);
    genesis_flush(0);
    EXPECT_EQ(sum_out, 0xdeadbeefu); // nothing written past the buffer
}

TEST(PaperApiStrict, FlushTruncationFatalUnderStrictFlush)
{
    RuntimeConfig cfg;
    cfg.strictFlush = true;
    genesis_load_image(sumImage, 1, cfg);
    uint8_t quals[2] = {1, 2};
    uint32_t sum_out = 0;
    configure_mem(quals, 1, 2, "QUAL", 0);
    configure_mem(&sum_out, 4, 0, "SUM", 0);
    run_genesis(0);
    EXPECT_THROW(genesis_flush(0), FatalError);
    genesis_unload_image();
}

// --- Concurrent multi-pipeline drivers ------------------------------------

/** The qual values pipeline p streams in round r (length varies too). */
std::vector<uint8_t>
concurrentQuals(int pipeline, int round)
{
    std::vector<uint8_t> quals(3 + static_cast<size_t>(pipeline));
    for (size_t i = 0; i < quals.size(); ++i) {
        quals[i] = static_cast<uint8_t>(
            (pipeline * 16 + round * 4 + static_cast<int>(i)) & 0x7f);
    }
    return quals;
}

TEST(PaperApiConcurrent, FourPipelinesMatchSequentialBitForBit)
{
    constexpr int kPipelines = 4;
    constexpr int kRounds = 3;

    // Sequential reference run.
    uint32_t expected[kPipelines][kRounds] = {};
    genesis_load_image(sumImage, kPipelines);
    for (int p = 0; p < kPipelines; ++p) {
        for (int r = 0; r < kRounds; ++r) {
            auto quals = concurrentQuals(p, r);
            uint32_t out = 0;
            configure_mem(quals.data(), 1,
                          static_cast<int>(quals.size()), "QUAL", p);
            configure_mem(&out, 4, 1, "SUM", p);
            run_genesis(p);
            genesis_flush(p);
            expected[p][r] = out;
        }
    }
    genesis_unload_image();

    // Concurrent run: one host thread per pipeline, all rounds.
    uint32_t actual[kPipelines][kRounds] = {};
    genesis_load_image(sumImage, kPipelines);
    std::vector<std::thread> drivers;
    for (int p = 0; p < kPipelines; ++p) {
        drivers.emplace_back([p, &actual] {
            for (int r = 0; r < kRounds; ++r) {
                auto quals = concurrentQuals(p, r);
                uint32_t out = 0;
                configure_mem(quals.data(), 1,
                              static_cast<int>(quals.size()), "QUAL",
                              p);
                configure_mem(&out, 4, 1, "SUM", p);
                run_genesis(p);
                while (!check_genesis(p))
                    std::this_thread::yield();
                wait_genesis(p);
                genesis_flush(p);
                actual[p][r] = out;
                EXPECT_GT(genesis_timing(p).accelSeconds, 0.0);
            }
        });
    }
    for (auto &t : drivers)
        t.join();
    genesis_unload_image();

    for (int p = 0; p < kPipelines; ++p) {
        for (int r = 0; r < kRounds; ++r)
            EXPECT_EQ(actual[p][r], expected[p][r])
                << "pipeline " << p << " round " << r;
    }
}

TEST(PaperApiConcurrent, SharedTraceSinkCollectsEveryPipeline)
{
    constexpr int kPipelines = 4;
    TraceSink sink;
    genesis_load_image(sumImage, kPipelines);
    genesis_trace(&sink);

    std::vector<std::thread> drivers;
    for (int p = 0; p < kPipelines; ++p) {
        drivers.emplace_back([p] {
            auto quals = concurrentQuals(p, 0);
            uint32_t out = 0;
            configure_mem(quals.data(), 1,
                          static_cast<int>(quals.size()), "QUAL", p);
            configure_mem(&out, 4, 1, "SUM", p);
            run_genesis(p);
            genesis_flush(p);
        });
    }
    for (auto &t : drivers)
        t.join();
    genesis_unload_image();

    // Each concurrently run pipeline recorded privately and was merged
    // into the shared sink as its own trace process.
    sink.finish();
    EXPECT_EQ(sink.numProcesses(), 4u);
    EXPECT_FALSE(sink.spans().empty());
}

// --- BatchRunner -----------------------------------------------------------

TEST(Batch, ShardsAcrossLanesMergeResultsAndTiming)
{
    constexpr size_t kShards = 7;
    BatchConfig cfg;
    cfg.numLanes = 3;
    BatchRunner runner(cfg);

    int64_t results[kShards] = {};
    BatchStats stats = runner.run(
        kShards,
        [](size_t shard, AcceleratorSession &session) {
            int64_t base = static_cast<int64_t>(shard) * 10;
            wireSumPipeline(session, {base + 1, base + 2, base + 3});
        },
        [&results](size_t shard, AcceleratorSession &session) {
            const auto *flushed = session.flush("OUT");
            ASSERT_EQ(flushed->elements.size(), 1u);
            results[shard] = flushed->elements[0];
        });

    for (size_t s = 0; s < kShards; ++s)
        EXPECT_EQ(results[s], static_cast<int64_t>(s) * 30 + 6);
    EXPECT_EQ(stats.shards, kShards);
    EXPECT_GT(stats.totalCycles, 0u);
    EXPECT_GT(stats.timing.accelSeconds, 0.0);
    EXPECT_GT(stats.timing.dmaSeconds, 0.0);
    EXPECT_GE(stats.wallSeconds, 0.0);
}

TEST(Batch, SharedDeviceMemoryReusesCachedColumns)
{
    constexpr size_t kShards = 6;
    DeviceMemory board;
    BatchConfig cfg;
    cfg.numLanes = 2;
    cfg.sharedDevice = &board;
    BatchRunner runner(cfg);

    int64_t results[kShards] = {};
    BatchStats stats = runner.run(
        kShards,
        [](size_t shard, AcceleratorSession &session) {
            // Shared board: per-shard output names, one cached input
            // shared by every shard.
            auto in = session.configureMemCached("tbl.VALS", {5, 6, 7},
                                                 {1, 1, 1}, 4);
            std::string out_name =
                "s" + std::to_string(shard) + ".OUT";
            auto *out = session.configureOutput(out_name, 4);
            auto *q = session.sim().makeQueue("q");
            auto *sum_q = session.sim().makeQueue("sum");
            session.sim().make<modules::MemoryReader>(
                "rd", in.buffer, session.sim().memory().makePort(0), q,
                modules::MemoryReaderConfig{});
            modules::ReducerConfig red;
            red.op = modules::ReduceOp::Sum;
            session.sim().make<modules::Reducer>("sum", q, sum_q, red);
            modules::MemoryWriterConfig wr;
            session.sim().make<modules::MemoryWriter>(
                "wr", out, session.sim().memory().makePort(0), sum_q,
                wr);
        },
        [&](size_t shard, AcceleratorSession &session) {
            std::string out_name =
                "s" + std::to_string(shard) + ".OUT";
            const auto *flushed = session.flush(out_name);
            ASSERT_EQ(flushed->elements.size(), 1u);
            results[shard] = flushed->elements[0];
            session.deviceMemory().unpin("tbl.VALS");
            session.deviceMemory().release(out_name);
        });

    for (size_t s = 0; s < kShards; ++s)
        EXPECT_EQ(results[s], 18);
    EXPECT_EQ(stats.shards, kShards);
    // One miss uploaded the column; every other shard hit it.
    auto cache = board.cacheStats();
    EXPECT_EQ(cache.misses, 1u);
    EXPECT_EQ(cache.hits, kShards - 1);
}

TEST(Dma, PresetLookupByName)
{
    EXPECT_DOUBLE_EQ(DmaConfig::fromName("pcie4").bytesPerSecond,
                     DmaConfig::pcie4().bytesPerSecond);
    EXPECT_EQ(DmaConfig::fromName("pcie3").name, "pcie3");
    EXPECT_THROW(DmaConfig::fromName("carrier-pigeon"), FatalError);
}

TEST(Batch, ShardTracesMergeIntoSharedSink)
{
    TraceSink sink;
    BatchConfig cfg;
    cfg.numLanes = 2;
    cfg.runtime.trace = &sink;
    cfg.runtime.traceLabel = "batch";
    BatchRunner runner(cfg);

    runner.run(
        3,
        [](size_t, AcceleratorSession &session) {
            wireSumPipeline(session, {1, 2, 3});
        },
        [](size_t, AcceleratorSession &session) {
            session.flush("OUT");
        });

    sink.finish();
    // One trace process per shard, adopted as each shard retired.
    EXPECT_EQ(sink.numProcesses(), 3u);
    EXPECT_FALSE(sink.spans().empty());
}

TEST(RuntimeValidate, DefaultConfigIsValid)
{
    EXPECT_TRUE(validate(RuntimeConfig()).empty());
}

TEST(RuntimeValidate, BadFieldsAreNamed)
{
    RuntimeConfig cfg;
    cfg.clockHz = 0.0;
    cfg.simThreads = -1;
    cfg.memThreads = -1;
    cfg.simWindow = -4;
    cfg.concurrentSessions = 0;
    cfg.dma.bytesPerSecond = -1.0;
    cfg.dma.perTransferLatency = -1e-6;
    std::vector<std::string> errors = validate(cfg);
    auto contains = [&errors](const char *field) {
        for (const auto &e : errors) {
            if (e.rfind(field, 0) == 0)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(contains("clockHz:"));
    EXPECT_TRUE(contains("simThreads:"));
    EXPECT_TRUE(contains("memThreads:"));
    EXPECT_TRUE(contains("simWindow:"));
    EXPECT_TRUE(contains("concurrentSessions:"));
    EXPECT_TRUE(contains("dma.bytesPerSecond:"));
    EXPECT_TRUE(contains("dma.perTransferLatency:"));
}

TEST(RuntimeValidate, MemoryErrorsArePrefixed)
{
    RuntimeConfig cfg;
    cfg.memory.numChannels = 0;
    std::vector<std::string> errors = validate(cfg);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].rfind("memory.numChannels:", 0), 0u)
        << errors[0];
}

TEST(RuntimeValidate, SessionConstructorRejectsBadConfigs)
{
    // clockHz <= 0 used to silently produce infinite / negative
    // simulated seconds; it must now fail at construction, naming the
    // knob.
    RuntimeConfig cfg;
    cfg.clockHz = -250e6;
    try {
        AcceleratorSession session(cfg);
        FAIL() << "session accepted a negative clock";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("clockHz"),
                  std::string::npos);
    }

    // A memory-model error surfaces through the same gate, with the
    // runtime validation running before the MemorySystem constructor so
    // every bad field is reported, not just the first memory one.
    RuntimeConfig bad_mem;
    bad_mem.memory.accessGranularity = 3;
    bad_mem.clockHz = 0.0;
    try {
        AcceleratorSession session(bad_mem);
        FAIL() << "session accepted a broken memory config";
    } catch (const FatalError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("memory.accessGranularity"),
                  std::string::npos);
        EXPECT_NE(what.find("clockHz"), std::string::npos);
    }
}

} // namespace
} // namespace genesis::runtime

/**
 * @file
 * Tests for the host runtime: DMA model, device memory, accelerator
 * sessions with timing accounting, and the paper-literal API
 * (configure_mem / run_genesis / check_genesis / wait_genesis /
 * genesis_flush).
 */

#include <gtest/gtest.h>

#include "base/logging.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/reducer.h"
#include "runtime/api.h"
#include "table/column.h"

namespace genesis::runtime {
namespace {

TEST(Dma, TransferTimeScalesWithBytes)
{
    DmaConfig cfg = DmaConfig::pcie3();
    double one_mb = transferSeconds(cfg, 1 << 20);
    double two_mb = transferSeconds(cfg, 2 << 20);
    EXPECT_GT(two_mb, one_mb);
    EXPECT_NEAR(two_mb - cfg.perTransferLatency,
                2 * (one_mb - cfg.perTransferLatency), 1e-12);
    EXPECT_DOUBLE_EQ(transferSeconds(cfg, 0), 0.0);
}

TEST(Dma, Pcie4IsFaster)
{
    uint64_t bytes = 100 << 20;
    EXPECT_LT(transferSeconds(DmaConfig::pcie4(), bytes),
              transferSeconds(DmaConfig::pcie3(), bytes));
}

TEST(DeviceMemory, UploadDecodesColumn)
{
    DeviceMemory mem;
    table::Column col("POS", table::DataType::UInt32);
    col.appendScalar(100);
    col.appendScalar(258);
    auto *buf = mem.upload("POS", col);
    ASSERT_EQ(buf->elements.size(), 2u);
    EXPECT_EQ(buf->elements[0], 100);
    EXPECT_EQ(buf->elements[1], 258);
    EXPECT_EQ(buf->elemSizeBytes, 4u);
    EXPECT_EQ(buf->rowLengths, (std::vector<uint32_t>{1, 1}));
    EXPECT_FALSE(buf->isOutput);
}

TEST(DeviceMemory, AllocationsGetDistinctAlignedAddresses)
{
    DeviceMemory mem;
    auto *a = mem.allocate("a", 4);
    auto *b = mem.allocate("b", 4);
    EXPECT_NE(a->baseAddr, b->baseAddr);
    EXPECT_EQ(a->baseAddr % DeviceMemory::kAlignment, 0u);
    EXPECT_EQ(b->baseAddr % DeviceMemory::kAlignment, 0u);
    EXPECT_TRUE(a->isOutput);
}

TEST(DeviceMemory, FindByName)
{
    DeviceMemory mem;
    mem.allocate("x", 1);
    EXPECT_NE(mem.find("x"), nullptr);
    EXPECT_EQ(mem.find("y"), nullptr);
}

TEST(Session, TimingSplitsHostDmaAccel)
{
    RuntimeConfig cfg;
    AcceleratorSession session(cfg);
    // DMA in.
    session.configureMem("in", {1, 2, 3}, {1, 1, 1}, 4);
    EXPECT_GT(session.timing().dmaSeconds, 0.0);
    // Host work.
    session.addHostSeconds(0.5);
    EXPECT_DOUBLE_EQ(session.timing().hostSeconds, 0.5);
}

TEST(Session, NonBlockingRunAndFlush)
{
    RuntimeConfig cfg;
    AcceleratorSession session(cfg);
    auto *in = session.configureMem("IN", {5, 6, 7}, {1, 1, 1}, 4);
    auto *out = session.configureOutput("OUT", 4);

    auto *q = session.sim().makeQueue("q");
    auto *sum_q = session.sim().makeQueue("sum");
    session.sim().make<modules::MemoryReader>(
        "rd", in, session.sim().memory().makePort(0), q,
        modules::MemoryReaderConfig{});
    modules::ReducerConfig red;
    red.op = modules::ReduceOp::Sum;
    session.sim().make<modules::Reducer>("sum", q, sum_q, red);
    modules::MemoryWriterConfig wr;
    session.sim().make<modules::MemoryWriter>(
        "wr", out, session.sim().memory().makePort(0), sum_q, wr);

    session.start();
    session.wait();
    EXPECT_TRUE(session.check());
    EXPECT_GT(session.timing().accelSeconds, 0.0);

    const auto *flushed = session.flush("OUT");
    ASSERT_EQ(flushed->elements.size(), 1u);
    EXPECT_EQ(flushed->elements[0], 18);
}

TEST(Session, FlushUnknownBufferFatal)
{
    AcceleratorSession session{RuntimeConfig{}};
    EXPECT_THROW(session.flush("nope"), FatalError);
}

TEST(Timing, BreakdownPercentagesAndAccumulate)
{
    TimingBreakdown t;
    t.hostSeconds = 1.0;
    t.dmaSeconds = 2.0;
    t.accelSeconds = 1.0;
    EXPECT_DOUBLE_EQ(t.total(), 4.0);
    std::string s = t.str();
    EXPECT_NE(s.find("50.00%"), std::string::npos);

    TimingBreakdown u;
    u.hostSeconds = 1.0;
    t += u;
    EXPECT_DOUBLE_EQ(t.hostSeconds, 2.0);
}

// --- Paper-literal API (Section III-E) ------------------------------------

/**
 * A minimal image: one reader streaming "QUAL" (uint8 scalars) into a
 * whole-stream sum Reducer and a writer producing the "SUM" column.
 */
void
sumImage(AcceleratorSession &session,
         const std::function<modules::ColumnBuffer *(const std::string &)>
             &input)
{
    auto *in = input("QUAL");
    auto *out = session.configureOutput("SUM", 4);
    auto *q = session.sim().makeQueue("q");
    auto *sum_q = session.sim().makeQueue("sum");
    session.sim().make<modules::MemoryReader>(
        "rd", in, session.sim().memory().makePort(0), q,
        modules::MemoryReaderConfig{});
    modules::ReducerConfig red;
    red.op = modules::ReduceOp::Sum;
    session.sim().make<modules::Reducer>("red", q, sum_q, red);
    session.sim().make<modules::MemoryWriter>(
        "wr", out, session.sim().memory().makePort(0), sum_q,
        modules::MemoryWriterConfig{});
}

class PaperApi : public ::testing::Test
{
  protected:
    void SetUp() override { genesis_load_image(sumImage, 2); }
    void TearDown() override { genesis_unload_image(); }
};

TEST_F(PaperApi, EndToEndFlow)
{
    uint8_t quals[4] = {10, 20, 30, 40};
    uint32_t sum_out = 0;

    configure_mem(quals, 1, 4, "QUAL", 0);
    configure_mem(&sum_out, 4, 1, "SUM", 0);
    run_genesis(0);
    wait_genesis(0);
    EXPECT_TRUE(check_genesis(0));
    genesis_flush(0);
    EXPECT_EQ(sum_out, 100u);

    auto timing = genesis_timing(0);
    EXPECT_GT(timing.dmaSeconds, 0.0);
    EXPECT_GT(timing.accelSeconds, 0.0);
}

TEST_F(PaperApi, PipelinesAreIndependent)
{
    uint8_t quals0[2] = {1, 2};
    uint8_t quals1[3] = {10, 10, 10};
    uint32_t out0 = 0, out1 = 0;

    configure_mem(quals0, 1, 2, "QUAL", 0);
    configure_mem(&out0, 4, 1, "SUM", 0);
    configure_mem(quals1, 1, 3, "QUAL", 1);
    configure_mem(&out1, 4, 1, "SUM", 1);

    run_genesis(0);
    run_genesis(1);
    genesis_flush(0);
    genesis_flush(1);
    EXPECT_EQ(out0, 3u);
    EXPECT_EQ(out1, 30u);
}

TEST_F(PaperApi, ErrorsOnMisuse)
{
    EXPECT_THROW(run_genesis(7), FatalError);     // bad pipeline id
    EXPECT_THROW(wait_genesis(0), FatalError);    // before run
    uint8_t dummy = 0;
    EXPECT_THROW(configure_mem(&dummy, 0, 1, "X", 0), FatalError);
    // Running without the required column configured.
    EXPECT_THROW(run_genesis(0), FatalError);
}

TEST(PaperApiUnloaded, CallsWithoutImageFatal)
{
    uint8_t dummy = 0;
    EXPECT_THROW(configure_mem(&dummy, 1, 1, "X", 0), FatalError);
    EXPECT_THROW(genesis_load_image(sumImage, 0), FatalError);
}

} // namespace
} // namespace genesis::runtime

/**
 * @file
 * Robustness properties: the SQL front end never crashes on malformed
 * input (it reports FatalError), and the simulator is bit-deterministic
 * — repeated runs of the same accelerator produce identical cycle
 * counts and outputs regardless of wall-clock conditions.
 */

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/rng.h"
#include "core/example_accel.h"
#include "sim_test_utils.h"
#include "sql/parser.h"

namespace genesis {
namespace {

TEST(ParserFuzz, RandomTextNeverPanics)
{
    // Random strings over the SQL alphabet must either parse or throw
    // FatalError with a message — never PanicError, never a crash.
    static const char kAlphabet[] =
        "SELECT FROM WHERE JOIN ON GROUP BY LIMIT CREATE TABLE AS "
        "INSERT INTO FOR IN END LOOP EXEC a b t u 0 1 42 @x #tmp "
        "( ) , ; . * + - / % == != < > <= >= = ' '";
    std::vector<std::string> words;
    {
        std::string word;
        for (const char *p = kAlphabet;; ++p) {
            if (*p == ' ' || *p == '\0') {
                if (!word.empty())
                    words.push_back(word);
                word.clear();
                if (*p == '\0')
                    break;
            } else {
                word.push_back(*p);
            }
        }
    }

    Rng rng(2024);
    int parsed_ok = 0;
    for (int trial = 0; trial < 500; ++trial) {
        std::string text;
        int len = static_cast<int>(rng.below(25));
        for (int i = 0; i < len; ++i) {
            text += words[rng.below(words.size())];
            text += ' ';
        }
        try {
            sql::parseScript(text);
            ++parsed_ok;
        } catch (const FatalError &) {
            // expected for malformed input
        }
    }
    // Some fraction should legitimately parse (e.g. empty scripts).
    EXPECT_GT(parsed_ok, 0);
}

TEST(ParserFuzz, ByteNoiseNeverPanics)
{
    Rng rng(77);
    for (int trial = 0; trial < 300; ++trial) {
        std::string text;
        int len = static_cast<int>(rng.below(64));
        for (int i = 0; i < len; ++i) {
            // Printable ASCII noise.
            text.push_back(static_cast<char>(32 + rng.below(95)));
        }
        try {
            sql::parseScript(text);
        } catch (const FatalError &) {
        }
    }
    SUCCEED();
}

TEST(Determinism, AcceleratorRunsAreBitIdentical)
{
    auto w = test::makeSmallWorkload(13, 150, 30'000, 1);
    core::ExampleAccelConfig cfg;
    cfg.numPipelines = 3;
    cfg.psize = 8'192;

    auto r1 = core::ExampleAccelerator(cfg).run(w.reads.reads, w.genome);
    auto r2 = core::ExampleAccelerator(cfg).run(w.reads.reads, w.genome);
    EXPECT_EQ(r1.counts, r2.counts);
    EXPECT_EQ(r1.info.totalCycles, r2.info.totalCycles);
    // Stall/flit statistics are architectural state: also identical.
    EXPECT_EQ(r1.info.stats.get("mem.requests"),
              r2.info.stats.get("mem.requests"));
    EXPECT_EQ(r1.info.stats.counters(), r2.info.stats.counters());
}

TEST(Determinism, CycleCountIndependentOfModuleRegistrationOrder)
{
    // Two-phase queues make results independent of tick order; verify
    // by wiring the same source/sink pair registered in both orders.
    auto run_once = [](bool sink_first) {
        sim::Simulator simulator;
        auto *q = simulator.makeQueue("q", 2);
        std::vector<sim::Flit> flits;
        for (int i = 0; i < 40; ++i)
            flits.push_back(sim::makeFlit(i));
        if (sink_first) {
            // Construct the sink before the source.
            auto sink = std::make_unique<test::VectorSink>("sink", q);
            auto *sink_ptr = sink.get();
            simulator.addModule(std::move(sink));
            simulator.make<test::VectorSource>("src", q, flits);
            uint64_t cycles = simulator.run();
            return std::make_pair(cycles, sink_ptr->collected().size());
        }
        simulator.make<test::VectorSource>("src", q, flits);
        auto *sink = simulator.make<test::VectorSink>("sink", q);
        uint64_t cycles = simulator.run();
        return std::make_pair(cycles, sink->collected().size());
    };
    auto a = run_once(false);
    auto b = run_once(true);
    EXPECT_EQ(a.second, b.second);
    // Tick order may shift completion by at most one cycle; the flit
    // stream itself must be identical (checked via count above) and the
    // cycle counts must agree within that single-cycle skew.
    EXPECT_NEAR(static_cast<double>(a.first),
                static_cast<double>(b.first), 1.0);
}

} // namespace
} // namespace genesis

/**
 * @file
 * Shared test helpers: vector-backed source/sink modules for driving
 * individual hardware modules, and small workload factories.
 */

#ifndef GENESIS_TESTS_SIM_TEST_UTILS_H
#define GENESIS_TESTS_SIM_TEST_UTILS_H

#include <vector>

#include "genome/read_simulator.h"
#include "genome/reference.h"
#include "sim/module.h"

namespace genesis::test {

/** Emits a fixed flit sequence, one per cycle, then closes. */
class VectorSource : public sim::Module
{
  public:
    VectorSource(std::string name, sim::HardwareQueue *out,
                 std::vector<sim::Flit> flits)
        : Module(std::move(name)), out_(out), flits_(std::move(flits))
    {
    }

    void
    tick() override
    {
        if (closed_ || !out_->canPush())
            return;
        if (cursor_ < flits_.size()) {
            out_->push(flits_[cursor_++]);
            return;
        }
        out_->close();
        closed_ = true;
    }

    bool done() const override { return closed_; }

  private:
    sim::HardwareQueue *out_;
    std::vector<sim::Flit> flits_;
    size_t cursor_ = 0;
    bool closed_ = false;
};

/** Collects every flit from a queue until it drains. */
class VectorSink : public sim::Module
{
  public:
    VectorSink(std::string name, sim::HardwareQueue *in)
        : Module(std::move(name)), in_(in)
    {
    }

    void
    tick() override
    {
        if (in_->canPop()) {
            collected_.push_back(in_->pop());
            return;
        }
        if (in_->drained())
            finished_ = true;
    }

    bool done() const override { return finished_; }

    const std::vector<sim::Flit> &collected() const { return collected_; }

    /** @return only the data (non-boundary) flits. */
    std::vector<sim::Flit>
    dataFlits() const
    {
        std::vector<sim::Flit> out;
        for (const auto &f : collected_) {
            if (!sim::isBoundary(f))
                out.push_back(f);
        }
        return out;
    }

  private:
    sim::HardwareQueue *in_;
    std::vector<sim::Flit> collected_;
    bool finished_ = false;
};

/** A small deterministic genome + reads workload for integration tests. */
struct SmallWorkload {
    genome::ReferenceGenome genome;
    genome::SimulatedReads reads;
};

inline SmallWorkload
makeSmallWorkload(uint64_t seed = 7, int64_t num_pairs = 200,
                  int64_t chrom_length = 60'000, int num_chromosomes = 2)
{
    SmallWorkload w;
    genome::SyntheticGenomeConfig gcfg;
    gcfg.numChromosomes = num_chromosomes;
    gcfg.firstChromosomeLength = chrom_length;
    gcfg.minChromosomeLength = chrom_length / 2;
    gcfg.snpDensity = 0.01;
    gcfg.seed = seed;
    w.genome = genome::ReferenceGenome::synthesize(gcfg);

    genome::ReadSimulatorConfig rcfg;
    rcfg.numPairs = num_pairs;
    rcfg.seed = seed * 31 + 1;
    genome::ReadSimulator simulator(w.genome, rcfg);
    w.reads = simulator.simulate();
    return w;
}

} // namespace genesis::test

#endif // GENESIS_TESTS_SIM_TEST_UTILS_H

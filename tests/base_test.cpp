/**
 * @file
 * Unit tests for src/base: logging, RNG, statistics.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "base/env.h"
#include "base/logging.h"
#include "base/rng.h"
#include "base/stats.h"

namespace genesis {
namespace {

/** Sets an environment variable for one scope, unsetting on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

TEST(Env, UnsetReturnsFallbackSilently)
{
    ::unsetenv("GENESIS_TEST_KNOB");
    EXPECT_FALSE(parseEnvInt("GENESIS_TEST_KNOB").present);
    EXPECT_EQ(envInt64("GENESIS_TEST_KNOB", 42), 42);
}

TEST(Env, EmptyStringIsTreatedAsUnset)
{
    ScopedEnv env("GENESIS_TEST_KNOB", "");
    EXPECT_FALSE(parseEnvInt("GENESIS_TEST_KNOB").present);
    EXPECT_EQ(envInt64("GENESIS_TEST_KNOB", 7), 7);
}

TEST(Env, ValidIntegersParse)
{
    {
        ScopedEnv env("GENESIS_TEST_KNOB", "4");
        EnvInt parsed = parseEnvInt("GENESIS_TEST_KNOB");
        EXPECT_TRUE(parsed.present);
        EXPECT_TRUE(parsed.valid);
        EXPECT_EQ(parsed.value, 4);
        EXPECT_EQ(envInt64("GENESIS_TEST_KNOB", 1), 4);
    }
    {
        ScopedEnv env("GENESIS_TEST_KNOB", "-5");
        EXPECT_EQ(envInt64("GENESIS_TEST_KNOB", 1), -5);
    }
    {
        ScopedEnv env("GENESIS_TEST_KNOB", "+12");
        EXPECT_EQ(envInt64("GENESIS_TEST_KNOB", 1), 12);
    }
}

TEST(Env, TrailingGarbageFallsBack)
{
    // The historical std::atoll path silently read "4x" as 4 — a typo'd
    // GENESIS_SERVICE_BOARDS=4x misconfigured the fleet without a word.
    setQuiet(true);
    ScopedEnv env("GENESIS_TEST_KNOB", "4x");
    EnvInt parsed = parseEnvInt("GENESIS_TEST_KNOB");
    EXPECT_TRUE(parsed.present);
    EXPECT_FALSE(parsed.valid);
    EXPECT_EQ(envInt64("GENESIS_TEST_KNOB", 9), 9);
    setQuiet(false);
}

TEST(Env, NonNumericFallsBack)
{
    setQuiet(true);
    ScopedEnv env("GENESIS_TEST_KNOB", "abc");
    EXPECT_EQ(envInt64("GENESIS_TEST_KNOB", 9), 9);
    setQuiet(false);
}

TEST(Env, LeadingWhitespaceFallsBack)
{
    setQuiet(true);
    ScopedEnv env("GENESIS_TEST_KNOB", " 4");
    EXPECT_FALSE(parseEnvInt("GENESIS_TEST_KNOB").valid);
    EXPECT_EQ(envInt64("GENESIS_TEST_KNOB", 9), 9);
    setQuiet(false);
}

TEST(Env, OverflowFallsBack)
{
    setQuiet(true);
    ScopedEnv env("GENESIS_TEST_KNOB", "99999999999999999999999");
    EXPECT_FALSE(parseEnvInt("GENESIS_TEST_KNOB").valid);
    EXPECT_EQ(envInt64("GENESIS_TEST_KNOB", 9), 9);
    setQuiet(false);
}

TEST(Env, OutOfRangeValueFallsBack)
{
    setQuiet(true);
    {
        // A parseable value below the knob's minimum is rejected, not
        // clamped: 0 boards is as wrong as "abc" boards.
        ScopedEnv env("GENESIS_TEST_KNOB", "0");
        EXPECT_EQ(envInt64("GENESIS_TEST_KNOB", 3, 1), 3);
    }
    {
        ScopedEnv env("GENESIS_TEST_KNOB", "500");
        EXPECT_EQ(envInt64("GENESIS_TEST_KNOB", 3, 1, 100), 3);
    }
    setQuiet(false);
}

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("a%db%s", 7, "x"), "a7bx");
    EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(Logging, PanicThrowsPanicError)
{
    setQuiet(true);
    EXPECT_THROW(panic("boom %d", 1), PanicError);
    setQuiet(false);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad input %s", "x"), FatalError);
}

TEST(Logging, FatalMessageContainsText)
{
    try {
        fatal("unique-marker-%d", 42);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("unique-marker-42"),
                  std::string::npos);
    }
}

TEST(Logging, AssertMacroPassesAndFails)
{
    setQuiet(true);
    EXPECT_NO_THROW(GENESIS_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(GENESIS_ASSERT(1 == 2, "value %d", 3), PanicError);
    setQuiet(false);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(ScalarStat, TracksMinMaxMeanCount)
{
    ScalarStat s;
    s.sample(2.0);
    s.sample(-1.0);
    s.sample(5.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(ScalarStat, EmptyIsZero)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(ScalarStat, MergeCombines)
{
    ScalarStat a, b;
    a.sample(1.0);
    a.sample(3.0);
    b.sample(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
}

TEST(StatRegistry, AddGetSet)
{
    StatRegistry r;
    EXPECT_EQ(r.get("x"), 0u);
    r.add("x");
    r.add("x", 4);
    EXPECT_EQ(r.get("x"), 5u);
    r.set("x", 2);
    EXPECT_EQ(r.get("x"), 2u);
}

TEST(StatRegistry, MergeAddsCounters)
{
    StatRegistry a, b;
    a.add("x", 1);
    b.add("x", 2);
    b.add("y", 3);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 3u);
    EXPECT_EQ(a.get("y"), 3u);
}

TEST(StatRegistry, CounterHandleAliasesNamedCounter)
{
    StatRegistry r;
    StatRegistry::Counter h = r.counter("x");
    EXPECT_EQ(r.get("x"), 0u); // interning creates the counter at zero
    ++*h;
    *h += 3;
    EXPECT_EQ(r.get("x"), 4u);
    r.add("x", 6);
    EXPECT_EQ(*h, 10u); // add() and the handle hit the same slot
    EXPECT_EQ(r.counter("x"), h); // re-interning returns the same handle
}

TEST(StatRegistry, CounterKeepsIterationOrder)
{
    StatRegistry r;
    r.counter("b");
    r.add("a");
    r.counter("c");
    std::vector<std::string> names;
    for (const auto &[name, value] : r.counters())
        names.push_back(name);
    EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StatRegistry, CreditDeltaMultipliesGrowth)
{
    StatRegistry r;
    r.add("grew", 5);
    r.add("steady", 7);
    StatRegistry snapshot = r;
    r.add("grew", 2);
    r.add("fresh", 1); // created after the snapshot: full value grew
    r.creditDelta(snapshot, 10);
    EXPECT_EQ(r.get("grew"), 5u + 2u + 2u * 10u);
    EXPECT_EQ(r.get("steady"), 7u);
    EXPECT_EQ(r.get("fresh"), 1u + 1u * 10u);
}

TEST(StatRegistry, ReportContainsEntries)
{
    StatRegistry r;
    r.add("alpha", 7);
    std::string report = r.report("pfx.");
    EXPECT_NE(report.find("pfx.alpha = 7"), std::string::npos);
}

TEST(Format, Bytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KiB");
    EXPECT_EQ(formatBytes(5 * 1024.0 * 1024.0), "5.00 MiB");
}

TEST(Format, Seconds)
{
    EXPECT_EQ(formatSeconds(2.5), "2.500 s");
    EXPECT_EQ(formatSeconds(0.002), "2.000 ms");
    EXPECT_EQ(formatSeconds(3e-6), "3.000 us");
}

} // namespace
} // namespace genesis

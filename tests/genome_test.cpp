/**
 * @file
 * Unit tests for src/genome: base pairs, CIGARs, read explosion
 * (including the paper's Figure 2/3 worked examples), the synthetic
 * reference, and SAM/FASTA round trips.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/logging.h"
#include "genome/basepair.h"
#include "genome/cigar.h"
#include "genome/fasta.h"
#include "genome/read.h"
#include "genome/reference.h"
#include "genome/samlite.h"

namespace genesis::genome {
namespace {

TEST(BasePair, CharRoundTrip)
{
    for (char c : {'A', 'C', 'G', 'T', 'N'})
        EXPECT_EQ(baseToChar(charToBase(c)), c);
    EXPECT_EQ(baseToChar(charToBase('a')), 'A');
    EXPECT_EQ(baseToChar(charToBase('x')), 'N');
}

TEST(BasePair, Complement)
{
    EXPECT_EQ(complementBase(charToBase('A')), charToBase('T'));
    EXPECT_EQ(complementBase(charToBase('C')), charToBase('G'));
    EXPECT_EQ(complementBase(charToBase('N')), charToBase('N'));
}

TEST(BasePair, SequenceStringRoundTrip)
{
    std::string s = "ACGTNACGT";
    EXPECT_EQ(sequenceToString(stringToSequence(s)), s);
}

TEST(BasePair, ReverseComplement)
{
    Sequence seq = stringToSequence("AACGT");
    EXPECT_EQ(sequenceToString(reverseComplement(seq)), "ACGTT");
}

TEST(BasePair, PhredRoundTrip)
{
    EXPECT_NEAR(phredToErrorProb(10), 0.1, 1e-12);
    EXPECT_NEAR(phredToErrorProb(30), 1e-3, 1e-12);
    EXPECT_EQ(errorProbToPhred(0.1), 10);
    EXPECT_EQ(errorProbToPhred(0.0), 93);
}

TEST(Cigar, ParseAndFormat)
{
    Cigar c = Cigar::parse("3S6M1D2M");
    ASSERT_EQ(c.size(), 4u);
    EXPECT_EQ(c.str(), "3S6M1D2M");
    EXPECT_EQ(c.elements()[0].op, CigarOp::SoftClip);
    EXPECT_EQ(c.elements()[2].op, CigarOp::Delete);
}

TEST(Cigar, EmptyIsStar)
{
    EXPECT_EQ(Cigar().str(), "*");
    EXPECT_TRUE(Cigar::parse("*").empty());
}

TEST(Cigar, ParseRejectsMalformed)
{
    EXPECT_THROW(Cigar::parse("M"), FatalError);
    EXPECT_THROW(Cigar::parse("3"), FatalError);
    EXPECT_THROW(Cigar::parse("0M"), FatalError);
    EXPECT_THROW(Cigar::parse("3X"), FatalError);
}

TEST(Cigar, Lengths)
{
    // Read 2 of paper Figure 2.
    Cigar c = Cigar::parse("3S6M1D2M");
    EXPECT_EQ(c.readLength(), 11u);       // 3 + 6 + 2 (D not in read)
    EXPECT_EQ(c.referenceLength(), 9u);   // 6 + 1 + 2 (S, I not in ref)
    EXPECT_EQ(c.leadingSoftClip(), 3u);
    EXPECT_EQ(c.trailingSoftClip(), 0u);
}

TEST(Cigar, TrailingSoftClip)
{
    Cigar c = Cigar::parse("5M4S");
    EXPECT_EQ(c.leadingSoftClip(), 0u);
    EXPECT_EQ(c.trailingSoftClip(), 4u);
}

TEST(Cigar, AppendCoalesces)
{
    Cigar c;
    c.append(3, CigarOp::Match);
    c.append(2, CigarOp::Match);
    c.append(1, CigarOp::Insert);
    c.append(0, CigarOp::Delete); // zero-length appends are dropped
    EXPECT_EQ(c.str(), "5M1I");
}

TEST(Cigar, PackUnpackRoundTrip)
{
    Cigar c = Cigar::parse("7M1I5M2S");
    EXPECT_EQ(Cigar::unpackAll(c.packAll()), c);
}

TEST(Cigar, PackRejectsHugeLength)
{
    CigarElement e{1u << 14, CigarOp::Match};
    EXPECT_THROW(e.pack(), PanicError);
}

TEST(ExplodeRead, Figure3Example)
{
    // The paper's Figure 3: POS 104, CIGAR 2S3M1I1M1D2M,
    // SEQ AGGTAAACA, QUAL ##9>>AAB? (phred chars minus 33).
    Cigar cigar = Cigar::parse("2S3M1I1M1D2M");
    Sequence seq = stringToSequence("AGGTAAACA");
    QualSequence qual;
    for (char c : std::string("##9>>AAB?"))
        qual.push_back(static_cast<uint8_t>(c - 33));

    auto rows = explodeRead(104, cigar, seq, qual);
    ASSERT_EQ(rows.size(), 8u); // 3M + 1I + 1M + 1D + 2M

    // 104 G, 105 T, 106 A (the soft-clipped AG never appears).
    EXPECT_EQ(rows[0].refPos, 104);
    EXPECT_EQ(rows[0].readBase, charToBase('G'));
    EXPECT_EQ(rows[1].refPos, 105);
    EXPECT_EQ(rows[1].readBase, charToBase('T'));
    EXPECT_EQ(rows[2].refPos, 106);
    EXPECT_EQ(rows[2].readBase, charToBase('A'));
    // Inserted A: no reference position.
    EXPECT_TRUE(rows[3].isInsertion());
    EXPECT_EQ(rows[3].readBase, charToBase('A'));
    // 107 A.
    EXPECT_EQ(rows[4].refPos, 107);
    EXPECT_EQ(rows[4].readBase, charToBase('A'));
    // 108 deleted: reference position present, no read base.
    EXPECT_EQ(rows[5].refPos, 108);
    EXPECT_TRUE(rows[5].isDeletion());
    EXPECT_EQ(rows[5].qual, -1);
    // 109 C, 110 A.
    EXPECT_EQ(rows[6].refPos, 109);
    EXPECT_EQ(rows[6].readBase, charToBase('C'));
    EXPECT_EQ(rows[7].refPos, 110);
    EXPECT_EQ(rows[7].readBase, charToBase('A'));
}

TEST(ExplodeRead, CycleNumbersSkipClips)
{
    Cigar cigar = Cigar::parse("2S3M");
    Sequence seq = stringToSequence("AAGGG");
    auto rows = explodeRead(10, cigar, seq, {});
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].readOffset, 0);
    EXPECT_EQ(rows[2].readOffset, 2);
    EXPECT_EQ(rows[0].qual, -1); // no QUAL supplied
}

TEST(ExplodeRead, RejectsLengthMismatch)
{
    setQuiet(true);
    Cigar cigar = Cigar::parse("5M");
    Sequence seq = stringToSequence("AAA");
    EXPECT_THROW(explodeRead(0, cigar, seq, {}), PanicError);
    setQuiet(false);
}

TEST(Reference, SynthesizeShape)
{
    SyntheticGenomeConfig cfg;
    cfg.numChromosomes = 3;
    cfg.firstChromosomeLength = 10'000;
    cfg.minChromosomeLength = 1'000;
    cfg.seed = 3;
    auto genome = ReferenceGenome::synthesize(cfg);
    ASSERT_EQ(genome.numChromosomes(), 3u);
    EXPECT_EQ(genome.chromosome(1).length(), 10'000);
    EXPECT_LT(genome.chromosome(2).length(),
              genome.chromosome(1).length());
    EXPECT_EQ(genome.chromosome(1).name, "chr1");
}

TEST(Reference, SnpDensityApproximatesConfig)
{
    SyntheticGenomeConfig cfg;
    cfg.numChromosomes = 1;
    cfg.firstChromosomeLength = 50'000;
    cfg.snpDensity = 0.02;
    cfg.seed = 4;
    auto genome = ReferenceGenome::synthesize(cfg);
    int64_t snps = 0;
    for (bool b : genome.chromosome(1).isSnp)
        snps += b ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(snps) / 50'000.0, 0.02, 0.005);
}

TEST(Reference, DeterministicBySeed)
{
    SyntheticGenomeConfig cfg;
    cfg.firstChromosomeLength = 5'000;
    cfg.seed = 99;
    auto a = ReferenceGenome::synthesize(cfg);
    auto b = ReferenceGenome::synthesize(cfg);
    EXPECT_EQ(a.chromosome(1).seq, b.chromosome(1).seq);
}

TEST(Reference, BaseAtOutOfRangeIsN)
{
    SyntheticGenomeConfig cfg;
    cfg.firstChromosomeLength = 100;
    cfg.minChromosomeLength = 100;
    auto genome = ReferenceGenome::synthesize(cfg);
    EXPECT_EQ(genome.baseAt(1, -1), static_cast<uint8_t>(Base::N));
    EXPECT_EQ(genome.baseAt(1, 100), static_cast<uint8_t>(Base::N));
}

TEST(Reference, UnknownChromosomeFatal)
{
    ReferenceGenome genome;
    EXPECT_THROW(genome.chromosome(5), FatalError);
}

TEST(Reference, ChromosomeNames)
{
    EXPECT_EQ(chromosomeName(1), "chr1");
    EXPECT_EQ(chromosomeName(23), "chrX");
    EXPECT_EQ(chromosomeName(24), "chrY");
}

TEST(Read, EndPosAndUnclipped)
{
    AlignedRead read;
    read.chr = 1;
    read.pos = 100;
    read.cigar = Cigar::parse("3S6M1D2M");
    read.seq = stringToSequence("AAACCCGGGTT");
    EXPECT_EQ(read.endPos(), 109);
    EXPECT_EQ(read.unclippedFivePrime(), 97); // 100 - 3S

    read.flags = kFlagReverse;
    read.cigar = Cigar::parse("6M1D2M3S");
    EXPECT_EQ(read.unclippedFivePrime(), 112); // 109 + 3S
}

TEST(Read, DuplicateKeyEncodesOrientation)
{
    AlignedRead fwd, rev;
    fwd.chr = rev.chr = 2;
    fwd.pos = rev.pos = 500;
    fwd.cigar = rev.cigar = Cigar::parse("10M");
    fwd.seq = rev.seq = stringToSequence("AAAAAAAAAA");
    rev.flags = kFlagReverse;
    EXPECT_NE(fwd.duplicateKey(), rev.duplicateKey());
}

TEST(Read, QualSum)
{
    AlignedRead read;
    read.qual = {10, 20, 30};
    EXPECT_EQ(read.qualSum(), 60);
}

TEST(Read, DuplicateFlagSetClear)
{
    AlignedRead read;
    EXPECT_FALSE(read.isDuplicate());
    read.setDuplicate(true);
    EXPECT_TRUE(read.isDuplicate());
    read.setDuplicate(false);
    EXPECT_FALSE(read.isDuplicate());
}

TEST(SamLite, LineRoundTrip)
{
    AlignedRead read;
    read.name = "frag42";
    read.chr = 3;
    read.pos = 1234;
    read.flags = kFlagPaired | kFlagFirstOfPair;
    read.mapq = 60;
    read.cigar = Cigar::parse("2S8M1I4M");
    read.seq = stringToSequence("ACGTACGTACGTACG");
    for (int i = 0; i < 15; ++i)
        read.qual.push_back(static_cast<uint8_t>(20 + i));
    read.readGroup = 2;
    read.mateChr = 3;
    read.matePos = 1500;
    read.nmTag = 3;
    read.mdTag = "4A7";
    read.uqTag = 55;

    AlignedRead parsed = samLineToRead(readToSamLine(read));
    EXPECT_EQ(parsed.name, read.name);
    EXPECT_EQ(parsed.chr, read.chr);
    EXPECT_EQ(parsed.pos, read.pos);
    EXPECT_EQ(parsed.flags, read.flags);
    EXPECT_EQ(parsed.cigar, read.cigar);
    EXPECT_EQ(parsed.seq, read.seq);
    EXPECT_EQ(parsed.qual, read.qual);
    EXPECT_EQ(parsed.readGroup, read.readGroup);
    EXPECT_EQ(parsed.nmTag, read.nmTag);
    EXPECT_EQ(parsed.mdTag, read.mdTag);
    EXPECT_EQ(parsed.uqTag, read.uqTag);
}

TEST(SamLite, XandYChromosomes)
{
    AlignedRead read;
    read.name = "r";
    read.chr = 23;
    read.pos = 10;
    read.cigar = Cigar::parse("3M");
    read.seq = stringToSequence("ACG");
    read.qual = {30, 30, 30};
    EXPECT_EQ(samLineToRead(readToSamLine(read)).chr, 23);
    read.chr = 24;
    EXPECT_EQ(samLineToRead(readToSamLine(read)).chr, 24);
}

TEST(SamLite, StreamRoundTrip)
{
    SyntheticGenomeConfig cfg;
    cfg.firstChromosomeLength = 1000;
    auto genome = ReferenceGenome::synthesize(cfg);

    std::vector<AlignedRead> reads(2);
    reads[0].name = "a";
    reads[0].chr = 1;
    reads[0].pos = 5;
    reads[0].cigar = Cigar::parse("4M");
    reads[0].seq = stringToSequence("ACGT");
    reads[0].qual = {30, 30, 30, 30};
    reads[1] = reads[0];
    reads[1].name = "b";
    reads[1].pos = 9;

    std::ostringstream os;
    writeSam(os, genome, reads);
    std::istringstream is(os.str());
    auto parsed = readSam(is);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].name, "a");
    EXPECT_EQ(parsed[1].pos, 9);
}

TEST(SamLite, MalformedLineFatal)
{
    EXPECT_THROW(samLineToRead("too\tfew\tfields"), FatalError);
}

TEST(Fasta, RoundTripWithSnpSidecar)
{
    SyntheticGenomeConfig cfg;
    cfg.numChromosomes = 2;
    cfg.firstChromosomeLength = 500;
    cfg.minChromosomeLength = 100;
    cfg.snpDensity = 0.05;
    cfg.seed = 21;
    auto genome = ReferenceGenome::synthesize(cfg);

    std::ostringstream os;
    writeFasta(os, genome);
    writeSnpSidecar(os, genome);

    std::istringstream is(os.str());
    auto parsed = readFasta(is);
    ASSERT_EQ(parsed.numChromosomes(), genome.numChromosomes());
    for (const auto &chrom : genome.chromosomes()) {
        const auto &p = parsed.chromosome(chrom.id);
        EXPECT_EQ(p.seq, chrom.seq);
        EXPECT_EQ(p.isSnp, chrom.isSnp);
    }
}

TEST(Fasta, WithoutSidecarSnpsAllFalse)
{
    SyntheticGenomeConfig cfg;
    cfg.firstChromosomeLength = 200;
    cfg.snpDensity = 0.5;
    auto genome = ReferenceGenome::synthesize(cfg);
    std::ostringstream os;
    writeFasta(os, genome);
    std::istringstream is(os.str());
    auto parsed = readFasta(is);
    for (bool b : parsed.chromosome(1).isSnp)
        EXPECT_FALSE(b);
}

} // namespace
} // namespace genesis::genome

/**
 * @file
 * Property tests for the synthetic read simulator: structural invariants
 * every generated workload must satisfy, across seeds.
 */

#include <gtest/gtest.h>

#include <map>

#include "base/logging.h"
#include "genome/read_simulator.h"
#include "sim_test_utils.h"

namespace genesis::genome {
namespace {

class ReadSimulatorProperty : public ::testing::TestWithParam<uint64_t>
{
  protected:
    void
    SetUp() override
    {
        workload_ = test::makeSmallWorkload(GetParam(), 300, 50'000, 2);
    }

    test::SmallWorkload workload_;
};

TEST_P(ReadSimulatorProperty, SeqLengthMatchesCigar)
{
    for (const auto &read : workload_.reads.reads) {
        EXPECT_EQ(read.seq.size(), read.cigar.readLength());
        EXPECT_EQ(read.qual.size(), read.seq.size());
    }
}

TEST_P(ReadSimulatorProperty, CoordinateSorted)
{
    const auto &reads = workload_.reads.reads;
    for (size_t i = 1; i < reads.size(); ++i) {
        bool ordered = reads[i - 1].chr < reads[i].chr ||
            (reads[i - 1].chr == reads[i].chr &&
             reads[i - 1].pos <= reads[i].pos);
        EXPECT_TRUE(ordered) << "reads " << i - 1 << " and " << i;
    }
}

TEST_P(ReadSimulatorProperty, AlignmentsStayInsideChromosome)
{
    for (const auto &read : workload_.reads.reads) {
        const auto &chrom = workload_.genome.chromosome(read.chr);
        EXPECT_GE(read.pos, 0);
        EXPECT_LE(read.endPos(), chrom.length());
    }
}

TEST_P(ReadSimulatorProperty, DuplicatesShareUnclippedFivePrime)
{
    // Every generated duplicate ("<name>_dupN") must share its source
    // fragment's unclipped 5' key — the invariant Mark Duplicates uses.
    std::map<std::string, uint64_t> originals;
    for (const auto &read : workload_.reads.reads) {
        if (read.name.find("_dup") == std::string::npos) {
            originals[read.name +
                      (read.isFirstOfPair() ? "/1" : "/2")] =
                read.duplicateKey();
        }
    }
    int checked = 0;
    for (const auto &read : workload_.reads.reads) {
        auto dup_at = read.name.find("_dup");
        if (dup_at == std::string::npos)
            continue;
        std::string base = read.name.substr(0, dup_at) +
            (read.isFirstOfPair() ? "/1" : "/2");
        auto it = originals.find(base);
        ASSERT_NE(it, originals.end());
        EXPECT_EQ(read.duplicateKey(), it->second);
        ++checked;
    }
    if (workload_.reads.trueDuplicatePairs > 0)
        EXPECT_GT(checked, 0);
}

TEST_P(ReadSimulatorProperty, PairsShareNameAndChromosome)
{
    std::map<std::string, std::vector<const AlignedRead *>> by_name;
    for (const auto &read : workload_.reads.reads)
        by_name[read.name].push_back(&read);
    for (const auto &[name, group] : by_name) {
        ASSERT_EQ(group.size(), 2u) << name;
        EXPECT_EQ(group[0]->chr, group[1]->chr);
        EXPECT_NE(group[0]->isFirstOfPair(), group[1]->isFirstOfPair());
    }
}

TEST_P(ReadSimulatorProperty, VariantsAreConsistentAcrossReads)
{
    // Sample variants come from one per-sample map, so two overlapping
    // reads must agree at variant loci where neither had an error.
    // Statistically verify: positions where >= 3 reads agree on a
    // non-reference base should be genuine variants.
    ReadSimulatorConfig cfg;
    cfg.numPairs = 300;
    cfg.seed = GetParam() * 31 + 1;
    ReadSimulator sim(workload_.genome, cfg);

    const auto &reads = workload_.reads.reads;
    std::map<std::pair<uint8_t, int64_t>, std::map<int, int>> pileup;
    for (const auto &read : reads) {
        for (const auto &b :
             explodeRead(read.pos, read.cigar, read.seq, read.qual)) {
            if (b.isInsertion() || b.isDeletion())
                continue;
            uint8_t ref = workload_.genome.baseAt(read.chr, b.refPos);
            if (b.readBase != ref)
                pileup[{read.chr, b.refPos}][b.readBase] += 1;
        }
    }
    int strong_sites = 0, variant_sites = 0;
    for (const auto &[locus, alts] : pileup) {
        for (const auto &[alt, count] : alts) {
            if (count >= 3) {
                ++strong_sites;
                if (sim.variantAt(locus.first, locus.second) == alt)
                    ++variant_sites;
            }
        }
    }
    if (strong_sites > 5) {
        // Sequencing errors rarely recur 3x at one locus.
        EXPECT_GT(variant_sites * 10, strong_sites * 8);
    }
}

TEST_P(ReadSimulatorProperty, Deterministic)
{
    auto again = test::makeSmallWorkload(GetParam(), 300, 50'000, 2);
    ASSERT_EQ(again.reads.reads.size(), workload_.reads.reads.size());
    for (size_t i = 0; i < again.reads.reads.size(); ++i) {
        EXPECT_EQ(again.reads.reads[i].name,
                  workload_.reads.reads[i].name);
        EXPECT_EQ(again.reads.reads[i].seq,
                  workload_.reads.reads[i].seq);
        EXPECT_EQ(again.reads.reads[i].qual,
                  workload_.reads.reads[i].qual);
    }
}

TEST_P(ReadSimulatorProperty, ReadGroupsInRange)
{
    for (const auto &read : workload_.reads.reads)
        EXPECT_LT(read.readGroup, 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadSimulatorProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 1234u));

TEST(ReadSimulator, RejectsBadConfig)
{
    test::SmallWorkload w = test::makeSmallWorkload(1, 1);
    ReadSimulatorConfig cfg;
    cfg.readLength = 4;
    EXPECT_THROW(ReadSimulator(w.genome, cfg), FatalError);
    cfg = ReadSimulatorConfig{};
    cfg.meanFragmentLength = 100;
    EXPECT_THROW(ReadSimulator(w.genome, cfg), FatalError);
}

TEST(ReadSimulator, ErrorsAndVariantsInjected)
{
    auto w = test::makeSmallWorkload(5, 500, 50'000, 1);
    EXPECT_GT(w.reads.injectedErrors, 0);
    EXPECT_GT(w.reads.variantBases, 0);
}

TEST(ReadSimulator, ReadGroupBiasIncreasesErrors)
{
    // Read group 3 has a 1 + 3*0.5 = 2.5x error multiplier over group 0;
    // measured mismatch rates must reflect that ordering.
    auto w = test::makeSmallWorkload(11, 2000, 80'000, 1);
    double mismatches[4] = {0, 0, 0, 0};
    double bases[4] = {0, 0, 0, 0};
    for (const auto &read : w.reads.reads) {
        for (const auto &b :
             explodeRead(read.pos, read.cigar, read.seq, read.qual)) {
            if (b.isInsertion() || b.isDeletion())
                continue;
            bases[read.readGroup] += 1;
            if (b.readBase != w.genome.baseAt(read.chr, b.refPos))
                mismatches[read.readGroup] += 1;
        }
    }
    double rate0 = mismatches[0] / bases[0];
    double rate3 = mismatches[3] / bases[3];
    EXPECT_GT(rate3, rate0);
}

} // namespace
} // namespace genesis::genome

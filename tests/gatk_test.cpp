/**
 * @file
 * Tests for the GATK4-like software baselines: Mark Duplicates, Metadata
 * Update (NM/MD/UQ), BQSR covariate construction and quality update, and
 * the seed-and-vote aligner.
 */

#include <gtest/gtest.h>

#include <map>

#include "base/logging.h"
#include "gatk/aligner.h"
#include "gatk/bqsr.h"
#include "gatk/markdup.h"
#include "gatk/metadata.h"
#include "gatk/preprocess.h"
#include "sim_test_utils.h"

namespace genesis::gatk {
namespace {

using genome::AlignedRead;
using genome::Cigar;
using genome::stringToSequence;

// --- Mark Duplicates -------------------------------------------------------

TEST(MarkDuplicates, KeepsHighestQualityFragment)
{
    // Two fragments at the same position; the second has higher quality.
    std::vector<AlignedRead> reads(4);
    for (int i = 0; i < 4; ++i) {
        reads[static_cast<size_t>(i)].chr = 1;
        reads[static_cast<size_t>(i)].cigar = Cigar::parse("4M");
        reads[static_cast<size_t>(i)].seq = stringToSequence("ACGT");
        reads[static_cast<size_t>(i)].flags = genome::kFlagPaired;
    }
    reads[0].name = reads[1].name = "fragA";
    reads[2].name = reads[3].name = "fragB";
    reads[0].pos = reads[2].pos = 100;
    reads[1].pos = reads[3].pos = 300;
    reads[1].flags |= genome::kFlagReverse;
    reads[3].flags |= genome::kFlagReverse;
    reads[0].qual = reads[1].qual = {20, 20, 20, 20};
    reads[2].qual = reads[3].qual = {30, 30, 30, 30};

    auto stats = markDuplicates(reads);
    EXPECT_EQ(stats.duplicateSets, 1);
    EXPECT_EQ(stats.duplicatesMarked, 2);
    for (const auto &read : reads) {
        if (read.name == "fragA")
            EXPECT_TRUE(read.isDuplicate());
        else
            EXPECT_FALSE(read.isDuplicate());
    }
}

TEST(MarkDuplicates, UnclippedKeyTreatsClippingAsEqual)
{
    // Same fragment aligned once with and once without a leading clip:
    // the unclipped 5' key must coincide, so they form a duplicate set.
    std::vector<AlignedRead> reads(2);
    reads[0].name = "orig";
    reads[0].chr = 1;
    reads[0].pos = 100;
    reads[0].cigar = Cigar::parse("8M");
    reads[0].seq = stringToSequence("ACGTACGT");
    reads[0].qual = {30, 30, 30, 30, 30, 30, 30, 30};
    reads[1] = reads[0];
    reads[1].name = "clipped";
    reads[1].pos = 103;
    reads[1].cigar = Cigar::parse("3S5M");
    reads[1].qual = {10, 10, 10, 10, 10, 10, 10, 10};

    auto stats = markDuplicates(reads);
    EXPECT_EQ(stats.duplicateSets, 1);
    EXPECT_EQ(stats.duplicatesMarked, 1);
}

TEST(MarkDuplicates, DifferentPositionsNotDuplicates)
{
    std::vector<AlignedRead> reads(2);
    for (auto &r : reads) {
        r.chr = 1;
        r.cigar = Cigar::parse("4M");
        r.seq = stringToSequence("ACGT");
        r.qual = {30, 30, 30, 30};
    }
    reads[0].name = "a";
    reads[0].pos = 100;
    reads[1].name = "b";
    reads[1].pos = 104;
    auto stats = markDuplicates(reads);
    EXPECT_EQ(stats.duplicatesMarked, 0);
}

TEST(MarkDuplicates, SortsOutput)
{
    auto w = test::makeSmallWorkload(31, 150);
    // Shuffle by reversing.
    std::reverse(w.reads.reads.begin(), w.reads.reads.end());
    markDuplicates(w.reads.reads);
    for (size_t i = 1; i < w.reads.reads.size(); ++i) {
        bool ordered = w.reads.reads[i - 1].chr < w.reads.reads[i].chr ||
            (w.reads.reads[i - 1].chr == w.reads.reads[i].chr &&
             w.reads.reads[i - 1].pos <= w.reads.reads[i].pos);
        EXPECT_TRUE(ordered);
    }
}

TEST(MarkDuplicates, FindsMostTrueDuplicates)
{
    auto w = test::makeSmallWorkload(37, 800, 60'000, 1);
    auto stats = markDuplicates(w.reads.reads);
    // Every true duplicate pair contributes 2 marked reads; collisions
    // between unrelated fragments can add a few more.
    EXPECT_GE(stats.duplicatesMarked, w.reads.trueDuplicatePairs * 2);
    EXPECT_LE(stats.duplicatesMarked,
              w.reads.trueDuplicatePairs * 2 +
                  static_cast<int64_t>(w.reads.reads.size()) / 20);
}

TEST(MarkDuplicates, QualSumsMismatchFatal)
{
    setQuiet(true);
    std::vector<AlignedRead> reads(1);
    std::vector<int64_t> sums;
    EXPECT_THROW(markDuplicatesWithQualSums(reads, sums), PanicError);
    setQuiet(false);
}

// --- Metadata Update ---------------------------------------------------------

class MetadataFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        genome::Chromosome chrom;
        chrom.id = 1;
        chrom.name = "chr1";
        //                 0123456789012
        chrom.seq = stringToSequence("ACGTAACCAGTAC");
        chrom.isSnp.assign(chrom.seq.size(), false);
        genome_.addChromosome(std::move(chrom));
    }

    genome::ReferenceGenome genome_;
};

TEST_F(MetadataFixture, PerfectMatch)
{
    AlignedRead read;
    read.chr = 1;
    read.pos = 2;
    read.cigar = Cigar::parse("5M");
    read.seq = stringToSequence("GTAAC");
    read.qual = {30, 30, 30, 30, 30};
    auto meta = computeMetadata(read, genome_);
    EXPECT_EQ(meta.nm, 0);
    EXPECT_EQ(meta.md, "5");
    EXPECT_EQ(meta.uq, 0);
}

TEST_F(MetadataFixture, MismatchesCountAndSumQuality)
{
    AlignedRead read;
    read.chr = 1;
    read.pos = 0;
    read.cigar = Cigar::parse("4M");
    read.seq = stringToSequence("AGCT"); // mismatches at 1, 2
    read.qual = {10, 11, 12, 13};
    auto meta = computeMetadata(read, genome_);
    EXPECT_EQ(meta.nm, 2);
    EXPECT_EQ(meta.md, "1C0G1"); // adjacent mismatches: 0 between
    EXPECT_EQ(meta.uq, 11 + 12);
}

TEST_F(MetadataFixture, InsertionCountsForNmNotMd)
{
    AlignedRead read;
    read.chr = 1;
    read.pos = 0;
    read.cigar = Cigar::parse("2M2I2M");
    read.seq = stringToSequence("ACTTGT");
    read.qual = {30, 30, 5, 5, 30, 30};
    auto meta = computeMetadata(read, genome_);
    EXPECT_EQ(meta.nm, 2);    // the two inserted bases
    EXPECT_EQ(meta.md, "4");  // MD silent about insertions
    EXPECT_EQ(meta.uq, 0);    // insertions do not contribute to UQ
}

TEST_F(MetadataFixture, DeletionCountsAndMdCaret)
{
    AlignedRead read;
    read.chr = 1;
    read.pos = 0;
    read.cigar = Cigar::parse("2M2D3M");
    read.seq = stringToSequence("ACAAC");
    read.qual = {30, 30, 30, 30, 30};
    auto meta = computeMetadata(read, genome_);
    EXPECT_EQ(meta.nm, 2);
    EXPECT_EQ(meta.md, "2^GT3");
    EXPECT_EQ(meta.uq, 0);
}

TEST_F(MetadataFixture, SoftClipsIgnored)
{
    AlignedRead read;
    read.chr = 1;
    read.pos = 2;
    read.cigar = Cigar::parse("2S3M1S");
    read.seq = stringToSequence("TTGTAC");
    read.qual = {40, 40, 30, 30, 30, 40};
    auto meta = computeMetadata(read, genome_);
    EXPECT_EQ(meta.nm, 0);
    EXPECT_EQ(meta.md, "3");
}

TEST_F(MetadataFixture, SetTagsOnAllReads)
{
    std::vector<AlignedRead> reads(1);
    reads[0].chr = 1;
    reads[0].pos = 0;
    reads[0].cigar = Cigar::parse("3M");
    reads[0].seq = stringToSequence("ACG");
    reads[0].qual = {30, 30, 30};
    setNmMdUqTags(reads, genome_);
    EXPECT_EQ(reads[0].nmTag, 0);
    EXPECT_EQ(reads[0].mdTag, "3");
    EXPECT_EQ(reads[0].uqTag, 0);
}

// --- BQSR --------------------------------------------------------------------

TEST(Bqsr, CountsTotalsAndErrorsByBin)
{
    genome::Chromosome chrom;
    chrom.id = 1;
    chrom.name = "chr1";
    chrom.seq = stringToSequence("AAAAAAAAAA");
    chrom.isSnp.assign(10, false);
    chrom.isSnp[4] = true; // known site
    genome::ReferenceGenome genome;
    genome.addChromosome(std::move(chrom));

    AlignedRead read;
    read.chr = 1;
    read.pos = 0;
    read.readGroup = 0;
    read.cigar = Cigar::parse("6M");
    read.seq = stringToSequence("ACAAGA");
    // errors at offsets 1 (C) and 4 (G); offset 4 is a SNP site.
    read.qual = {30, 30, 30, 30, 30, 30};

    BqsrConfig cfg;
    cfg.numReadGroups = 1;
    auto table = buildCovariateTable({read}, genome, cfg);

    // 5 bases counted (SNP site excluded); 1 error.
    EXPECT_EQ(table.totalObservations(), 5);
    EXPECT_EQ(table.totalErrors(), 1);

    // Error base: q=30, cycle 1 -> bin 30*302+1.
    EXPECT_EQ(table.cycleErrors[0][30 * 302 + 1], 1);
    EXPECT_EQ(table.cycleTotals[0][30 * 302 + 1], 1);
    // Context covariate: first base has none -> only 4 context totals.
    int64_t ctx_total = 0;
    for (int64_t v : table.contextTotals[0])
        ctx_total += v;
    EXPECT_EQ(ctx_total, 4);
}

TEST(Bqsr, ReverseReadsUseSecondCycleBank)
{
    genome::Chromosome chrom;
    chrom.id = 1;
    chrom.name = "chr1";
    chrom.seq = stringToSequence("AAAA");
    chrom.isSnp.assign(4, false);
    genome::ReferenceGenome genome;
    genome.addChromosome(std::move(chrom));

    AlignedRead read;
    read.chr = 1;
    read.pos = 0;
    read.readGroup = 0;
    read.flags = genome::kFlagReverse;
    read.cigar = Cigar::parse("2M");
    read.seq = stringToSequence("AA");
    read.qual = {25, 25};

    BqsrConfig cfg;
    cfg.numReadGroups = 1;
    auto table = buildCovariateTable({read}, genome, cfg);
    EXPECT_EQ(table.cycleTotals[0][25 * 302 + 151 + 0], 1);
    EXPECT_EQ(table.cycleTotals[0][25 * 302 + 151 + 1], 1);
}

TEST(Bqsr, MergeAddsTables)
{
    BqsrConfig cfg;
    cfg.numReadGroups = 1;
    CovariateTable a(cfg), b(cfg);
    a.cycleTotals[0][5] = 2;
    b.cycleTotals[0][5] = 3;
    b.contextErrors[0][1] = 7;
    a.merge(b);
    EXPECT_EQ(a.cycleTotals[0][5], 5);
    EXPECT_EQ(a.contextErrors[0][1], 7);
}

TEST(Bqsr, EmpiricalQualitySmoothing)
{
    // 0 errors in 0 observations -> p = 1/2 -> ~3.
    EXPECT_NEAR(empiricalQuality(0, 0), 3.01, 0.01);
    // 1 error in 999998 -> about Q57.
    EXPECT_GT(empiricalQuality(1, 999'998), 50.0);
    // Errors everywhere -> near 0.
    EXPECT_LT(empiricalQuality(99, 100), 0.1);
}

TEST(Bqsr, QualityUpdateMovesTowardEmpiricalRates)
{
    // A workload with strong read-group bias: after recalibration, the
    // mean quality of the noisiest read group must drop below the mean
    // of the cleanest one.
    auto w = test::makeSmallWorkload(41, 1500, 60'000, 1);
    auto table = buildCovariateTable(w.reads.reads, w.genome);
    int64_t changed = applyQualityUpdate(w.reads.reads, table);
    EXPECT_GT(changed, 0);

    double sum[4] = {0, 0, 0, 0};
    double n[4] = {0, 0, 0, 0};
    for (const auto &read : w.reads.reads) {
        for (uint8_t q : read.qual) {
            sum[read.readGroup] += q;
            n[read.readGroup] += 1;
        }
    }
    EXPECT_LT(sum[3] / n[3], sum[0] / n[0]);
}

TEST(Bqsr, ReadGroupOutOfRangeFatal)
{
    auto w = test::makeSmallWorkload(43, 5);
    BqsrConfig cfg;
    cfg.numReadGroups = 1; // workload uses 4
    EXPECT_THROW(buildCovariateTable(w.reads.reads, w.genome, cfg),
                 FatalError);
}

// --- Aligner ------------------------------------------------------------------

TEST(Aligner, RecoversSimulatedPositions)
{
    auto w = test::makeSmallWorkload(51, 150, 40'000, 1);
    ReadAligner aligner(w.genome);
    int64_t correct = 0, mapped = 0, total = 0;
    for (const auto &read : w.reads.reads) {
        ++total;
        auto result = aligner.align(read.seq);
        if (!result.mapped)
            continue;
        ++mapped;
        // The aligner maps the raw sequence; with soft clips the
        // reported position may differ by the clip length.
        int64_t expected = read.unclippedFivePrime();
        if (read.isReverse())
            expected = read.pos - read.cigar.leadingSoftClip();
        if (result.chr == read.chr &&
            std::llabs(result.pos - expected) <= 16) {
            ++correct;
        }
    }
    // The stand-in aligner verifies ungapped, so reads containing
    // indels (a deliberate ~10-15% of the workload) may stay unmapped.
    EXPECT_GT(mapped * 100, total * 85);   // > 85% mapped
    EXPECT_GT(correct * 100, mapped * 90); // > 90% correctly placed
}

TEST(Aligner, RejectsGarbage)
{
    auto w = test::makeSmallWorkload(53, 5, 30'000, 1);
    ReadAligner aligner(w.genome);
    Rng rng(99);
    genome::Sequence junk;
    for (int i = 0; i < 151; ++i)
        junk.push_back(static_cast<uint8_t>(rng.below(4)));
    // A random 151-mer should either not map or map with many
    // mismatches; exact placement would be suspicious.
    auto result = aligner.align(junk);
    if (result.mapped)
        EXPECT_GT(result.mismatches, 0);
}

TEST(Aligner, BadSeedLengthFatal)
{
    auto w = test::makeSmallWorkload(55, 1);
    AlignerConfig cfg;
    cfg.seedLength = 40;
    EXPECT_THROW(ReadAligner(w.genome, cfg), FatalError);
}

// --- Preprocess driver ----------------------------------------------------------

TEST(Preprocess, RunsAllStagesAndReportsTimes)
{
    auto w = test::makeSmallWorkload(61, 400, 50'000, 1);
    PreprocessOptions options;
    options.runAligner = true;
    auto result = runPreprocess(w.reads.reads, w.genome, options);
    EXPECT_GT(result.times.alignment, 0.0);
    EXPECT_GT(result.times.duplicateMarking, 0.0);
    EXPECT_GT(result.times.metadataUpdate, 0.0);
    EXPECT_GT(result.times.bqsrTableConstruction, 0.0);
    EXPECT_GT(result.mappedFraction, 0.85);
    EXPECT_GT(result.covariates.totalObservations(), 0);
    // Tags attached to every read.
    for (const auto &read : w.reads.reads)
        EXPECT_GE(read.nmTag, 0);
}

TEST(Preprocess, AcceleratedAlignmentShrinksItsShare)
{
    auto w = test::makeSmallWorkload(63, 200, 40'000, 1);
    auto reads_copy = w.reads.reads;

    PreprocessOptions sw;
    sw.runAligner = true;
    auto sw_result = runPreprocess(w.reads.reads, w.genome, sw);

    PreprocessOptions hw;
    hw.alignmentAcceleratorReadsPerSec = 4.058e6; // GenAx throughput
    auto hw_result = runPreprocess(reads_copy, w.genome, hw);

    double sw_share = sw_result.times.alignment /
        sw_result.times.total();
    double hw_share = hw_result.times.alignment /
        hw_result.times.total();
    EXPECT_LT(hw_share, sw_share);
    EXPECT_LT(hw_share, 0.05);
}

} // namespace
} // namespace genesis::gatk

/**
 * @file
 * Per-module tests for the Genesis hardware library, each driving one
 * module in isolation with vector sources/sinks inside a Simulator.
 */

#include <gtest/gtest.h>

#include "base/logging.h"
#include "genome/basepair.h"
#include "modules/binidgen.h"
#include "modules/custom.h"
#include "modules/filter.h"
#include "modules/fork.h"
#include "modules/joiner.h"
#include "modules/mdgen.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/read_to_bases.h"
#include "modules/reducer.h"
#include "modules/spm_reader.h"
#include "modules/spm_updater.h"
#include "modules/stream_alu.h"
#include "sim/scheduler.h"
#include "sim_test_utils.h"

namespace genesis::modules {
namespace {

using sim::Flit;
using sim::HardwareQueue;
using sim::Simulator;
using sim::makeBoundary;
using sim::makeFlit;
using test::VectorSink;
using test::VectorSource;

// --- MemoryReader ---------------------------------------------------------

TEST(MemoryReader, StreamsScalarColumn)
{
    Simulator sim;
    ColumnBuffer buf;
    buf.elemSizeBytes = 4;
    buf.appendRow({10});
    buf.appendRow({20});
    buf.appendRow({30});
    auto *q = sim.makeQueue("out");
    sim.make<MemoryReader>("rd", &buf, sim.memory().makePort(0), q,
                           MemoryReaderConfig{});
    auto *sink = sim.make<VectorSink>("sink", q);
    sim.run();
    ASSERT_EQ(sink->collected().size(), 3u);
    EXPECT_EQ(sink->collected()[0].key, 10);
    EXPECT_EQ(sink->collected()[2].fieldAt(0), 30);
}

TEST(MemoryReader, EmitsRowBoundaries)
{
    Simulator sim;
    ColumnBuffer buf;
    buf.elemSizeBytes = 1;
    buf.appendRow({1, 2});
    buf.appendRow({});  // empty row still delimits
    buf.appendRow({3});
    auto *q = sim.makeQueue("out");
    MemoryReaderConfig cfg;
    cfg.emitBoundaries = true;
    sim.make<MemoryReader>("rd", &buf, sim.memory().makePort(0), q, cfg);
    auto *sink = sim.make<VectorSink>("sink", q);
    sim.run();
    const auto &flits = sink->collected();
    ASSERT_EQ(flits.size(), 6u); // 1 2 B B 3 B
    EXPECT_FALSE(sim::isBoundary(flits[0]));
    EXPECT_TRUE(sim::isBoundary(flits[2]));
    EXPECT_TRUE(sim::isBoundary(flits[3]));
    EXPECT_EQ(flits[4].key, 3);
    EXPECT_TRUE(sim::isBoundary(flits[5]));
}

TEST(MemoryReader, ThroughputBoundedByMemoryBandwidth)
{
    // 1 B/cycle/channel memory cannot feed a 4 B/flit stream at
    // 1 flit/cycle: cycles must be about 4x the flit count.
    sim::MemoryConfig mem_cfg;
    mem_cfg.numChannels = 1;
    mem_cfg.bytesPerCyclePerChannel = 1;
    mem_cfg.latencyCycles = 4;
    Simulator sim(mem_cfg);
    ColumnBuffer buf;
    buf.elemSizeBytes = 4;
    for (int i = 0; i < 200; ++i)
        buf.appendRow({i});
    auto *q = sim.makeQueue("out");
    sim.make<MemoryReader>("rd", &buf, sim.memory().makePort(0), q,
                           MemoryReaderConfig{});
    sim.make<VectorSink>("sink", q);
    uint64_t cycles = sim.run();
    EXPECT_GE(cycles, 200u * 4u);
}

// --- MemoryWriter ---------------------------------------------------------

TEST(MemoryWriter, ScalarRows)
{
    Simulator sim;
    ColumnBuffer out;
    auto *q = sim.makeQueue("in");
    sim.make<VectorSource>("src", q,
                           std::vector<Flit>{makeFlit(0, 5),
                                             makeFlit(0, 6)});
    MemoryWriterConfig cfg;
    cfg.fieldIndex = 0;
    cfg.elemSizeBytes = 4;
    sim.make<MemoryWriter>("wr", &out, sim.memory().makePort(0), q, cfg);
    sim.run();
    ASSERT_EQ(out.numRows(), 2u);
    EXPECT_EQ(out.elements[0], 5);
    EXPECT_EQ(out.elements[1], 6);
}

TEST(MemoryWriter, RowModeUsesBoundaries)
{
    Simulator sim;
    ColumnBuffer out;
    auto *q = sim.makeQueue("in");
    sim.make<VectorSource>(
        "src", q,
        std::vector<Flit>{makeFlit(0, 'a'), makeFlit(0, 'b'),
                          makeBoundary(), makeFlit(0, 'c'),
                          makeBoundary()});
    MemoryWriterConfig cfg;
    cfg.elemSizeBytes = 1;
    cfg.rowMode = true;
    sim.make<MemoryWriter>("wr", &out, sim.memory().makePort(0), q, cfg);
    sim.run();
    ASSERT_EQ(out.numRows(), 2u);
    EXPECT_EQ(out.rowLengths[0], 2u);
    EXPECT_EQ(out.rowLengths[1], 1u);
    EXPECT_EQ(out.elements[2], 'c');
}

TEST(MemoryWriter, KeyFieldOption)
{
    Simulator sim;
    ColumnBuffer out;
    auto *q = sim.makeQueue("in");
    sim.make<VectorSource>("src", q,
                           std::vector<Flit>{makeFlit(77, 1)});
    MemoryWriterConfig cfg;
    cfg.fieldIndex = -1; // store the key
    sim.make<MemoryWriter>("wr", &out, sim.memory().makePort(0), q, cfg);
    sim.run();
    ASSERT_EQ(out.elements.size(), 1u);
    EXPECT_EQ(out.elements[0], 77);
}

// --- SpmUpdater / SpmReader ------------------------------------------------

TEST(SpmUpdater, SequentialInitialisesFromStream)
{
    Simulator sim;
    auto *spm = sim.makeScratchpad("s", 4);
    auto *q = sim.makeQueue("in");
    sim.make<VectorSource>("src", q,
                           std::vector<Flit>{makeFlit(7), makeFlit(8),
                                             makeFlit(9)});
    SpmUpdaterConfig cfg;
    cfg.mode = SpmUpdateMode::Sequential;
    cfg.startAddr = 1;
    sim.make<SpmUpdater>("upd", spm, q, cfg);
    sim.run();
    EXPECT_EQ(spm->read(1), 7);
    EXPECT_EQ(spm->read(3), 9);
}

TEST(SpmUpdater, RandomWrites)
{
    Simulator sim;
    auto *spm = sim.makeScratchpad("s", 8);
    auto *q = sim.makeQueue("in");
    sim.make<VectorSource>("src", q,
                           std::vector<Flit>{makeFlit(5, 50),
                                             makeFlit(2, 20)});
    SpmUpdaterConfig cfg;
    cfg.mode = SpmUpdateMode::Random;
    cfg.addrField = -1; // key
    cfg.valueField = 0;
    sim.make<SpmUpdater>("upd", spm, q, cfg);
    sim.run();
    EXPECT_EQ(spm->read(5), 50);
    EXPECT_EQ(spm->read(2), 20);
}

TEST(SpmUpdater, ReadModifyWriteIncrements)
{
    Simulator sim;
    auto *spm = sim.makeScratchpad("s", 4);
    auto *q = sim.makeQueue("in");
    std::vector<Flit> flits;
    for (int i = 0; i < 10; ++i)
        flits.push_back(makeFlit(i % 2));
    sim.make<VectorSource>("src", q, flits);
    SpmUpdaterConfig cfg;
    cfg.mode = SpmUpdateMode::ReadModifyWrite;
    sim.make<SpmUpdater>("upd", spm, q, cfg);
    sim.run();
    EXPECT_EQ(spm->read(0), 5);
    EXPECT_EQ(spm->read(1), 5);
}

TEST(SpmUpdater, RmwHazardStallsButStaysCorrect)
{
    // Back-to-back updates to the same address exercise the three-stage
    // hazard interlock; correctness must hold and stalls must appear.
    Simulator sim;
    auto *spm = sim.makeScratchpad("s", 2);
    auto *q = sim.makeQueue("in");
    std::vector<Flit> flits(20, makeFlit(0));
    sim.make<VectorSource>("src", q, flits);
    SpmUpdaterConfig cfg;
    cfg.mode = SpmUpdateMode::ReadModifyWrite;
    auto *upd = sim.make<SpmUpdater>("upd", spm, q, cfg);
    sim.run();
    EXPECT_EQ(spm->read(0), 20);
    EXPECT_GT(upd->stats().get("stall.rmw_hazard"), 0u);
}

TEST(SpmUpdater, RmwSkipsNullAddresses)
{
    Simulator sim;
    auto *spm = sim.makeScratchpad("s", 2);
    auto *q = sim.makeQueue("in");
    sim.make<VectorSource>(
        "src", q,
        std::vector<Flit>{makeFlit(0), makeFlit(Flit::kNull),
                          makeFlit(0), makeBoundary()});
    SpmUpdaterConfig cfg;
    cfg.mode = SpmUpdateMode::ReadModifyWrite;
    auto *upd = sim.make<SpmUpdater>("upd", spm, q, cfg);
    sim.run();
    EXPECT_EQ(spm->read(0), 2);
    EXPECT_EQ(upd->stats().get("skipped"), 1u);
}

TEST(SpmUpdater, CustomModifyFunction)
{
    Simulator sim;
    auto *spm = sim.makeScratchpad("s", 1);
    auto *q = sim.makeQueue("in");
    sim.make<VectorSource>("src", q,
                           std::vector<Flit>{makeFlit(0, 5),
                                             makeFlit(0, 7)});
    SpmUpdaterConfig cfg;
    cfg.mode = SpmUpdateMode::ReadModifyWrite;
    cfg.modify = [](int64_t old, const Flit &f) {
        return old + f.fieldAt(0);
    };
    sim.make<SpmUpdater>("upd", spm, q, cfg);
    sim.run();
    EXPECT_EQ(spm->read(0), 12);
}

TEST(SpmReader, AddressStreamMode)
{
    Simulator sim;
    auto *spm = sim.makeScratchpad("s", 4);
    spm->write(2, 22);
    spm->write(3, 33);
    auto *addr_q = sim.makeQueue("addr");
    auto *out_q = sim.makeQueue("out");
    sim.make<VectorSource>("src", addr_q,
                           std::vector<Flit>{makeFlit(3), makeFlit(2)});
    SpmReaderConfig cfg;
    cfg.mode = SpmReadMode::AddressStream;
    sim.make<SpmReader>("rd", spm, addr_q, out_q, cfg);
    auto *sink = sim.make<VectorSink>("sink", out_q);
    sim.run();
    ASSERT_EQ(sink->collected().size(), 2u);
    EXPECT_EQ(sink->collected()[0].fieldAt(0), 33);
    EXPECT_EQ(sink->collected()[1].fieldAt(0), 22);
}

TEST(SpmReader, IntervalModeEmitsRangesWithBoundaries)
{
    Simulator sim;
    auto *spm = sim.makeScratchpad("s", 8);
    for (int i = 0; i < 8; ++i)
        spm->write(static_cast<size_t>(i), 100 + i);
    auto *start_q = sim.makeQueue("start");
    auto *end_q = sim.makeQueue("end");
    auto *out_q = sim.makeQueue("out");
    sim.make<VectorSource>("s1", start_q,
                           std::vector<Flit>{makeFlit(2), makeFlit(5)});
    sim.make<VectorSource>("s2", end_q,
                           std::vector<Flit>{makeFlit(4), makeFlit(5)});
    SpmReaderConfig cfg;
    cfg.mode = SpmReadMode::Interval;
    sim.make<SpmReader>("rd", spm, start_q, end_q, out_q, cfg);
    auto *sink = sim.make<VectorSink>("sink", out_q);
    sim.run();
    const auto &flits = sink->collected();
    // [2,4): 102 103 B ; [5,5): B
    ASSERT_EQ(flits.size(), 4u);
    EXPECT_EQ(flits[0].key, 2);
    EXPECT_EQ(flits[0].fieldAt(0), 102);
    EXPECT_EQ(flits[1].fieldAt(0), 103);
    EXPECT_TRUE(sim::isBoundary(flits[2]));
    EXPECT_TRUE(sim::isBoundary(flits[3]));
}

TEST(SpmReader, IntervalUnpackPair)
{
    Simulator sim;
    auto *spm = sim.makeScratchpad("s", 2);
    spm->write(0, 3 | (1 << 8));
    auto *start_q = sim.makeQueue("start");
    auto *end_q = sim.makeQueue("end");
    auto *out_q = sim.makeQueue("out");
    sim.make<VectorSource>("s1", start_q,
                           std::vector<Flit>{makeFlit(0)});
    sim.make<VectorSource>("s2", end_q, std::vector<Flit>{makeFlit(1)});
    SpmReaderConfig cfg;
    cfg.mode = SpmReadMode::Interval;
    cfg.unpackPair = true;
    sim.make<SpmReader>("rd", spm, start_q, end_q, out_q, cfg);
    auto *sink = sim.make<VectorSink>("sink", out_q);
    sim.run();
    ASSERT_EQ(sink->dataFlits().size(), 1u);
    EXPECT_EQ(sink->dataFlits()[0].fieldAt(0), 3);
    EXPECT_EQ(sink->dataFlits()[0].fieldAt(1), 1);
}

TEST(SpmReader, DrainWaitsForProducer)
{
    Simulator sim;
    auto *spm = sim.makeScratchpad("s", 3);
    auto *upd_q = sim.makeQueue("upd");
    auto *out_q = sim.makeQueue("out");
    sim.make<VectorSource>("src", upd_q,
                           std::vector<Flit>{makeFlit(0, 1),
                                             makeFlit(2, 9)});
    SpmUpdaterConfig ucfg;
    ucfg.mode = SpmUpdateMode::Random;
    ucfg.addrField = -1;
    ucfg.valueField = 0;
    auto *upd = sim.make<SpmUpdater>("upd", spm, upd_q, ucfg);
    SpmReaderConfig rcfg;
    rcfg.mode = SpmReadMode::Drain;
    sim.make<SpmReader>("rd", spm, upd, out_q, rcfg);
    auto *sink = sim.make<VectorSink>("sink", out_q);
    sim.run();
    ASSERT_EQ(sink->collected().size(), 3u);
    EXPECT_EQ(sink->collected()[0].fieldAt(0), 1);
    EXPECT_EQ(sink->collected()[2].fieldAt(0), 9);
}

// --- Joiner ---------------------------------------------------------------

std::vector<Flit>
keyedFlits(std::initializer_list<std::pair<int64_t, int64_t>> kvs,
           bool trailing_boundary = true)
{
    std::vector<Flit> flits;
    for (auto [k, v] : kvs)
        flits.push_back(makeFlit(k, v));
    if (trailing_boundary)
        flits.push_back(makeBoundary());
    return flits;
}

struct JoinerRun {
    std::vector<Flit> out;
};

JoinerRun
runJoiner(JoinMode mode, std::vector<Flit> left, std::vector<Flit> right,
          int left_fields = 1, int right_fields = 1)
{
    Simulator sim;
    auto *lq = sim.makeQueue("l");
    auto *rq = sim.makeQueue("r");
    auto *oq = sim.makeQueue("o");
    sim.make<VectorSource>("ls", lq, std::move(left));
    sim.make<VectorSource>("rs", rq, std::move(right));
    JoinerConfig cfg;
    cfg.mode = mode;
    cfg.leftFields = left_fields;
    cfg.rightFields = right_fields;
    sim.make<Joiner>("join", lq, rq, oq, cfg);
    auto *sink = sim.make<VectorSink>("sink", oq);
    sim.run();
    return {sink->collected()};
}

TEST(Joiner, InnerJoinMergesEqualKeys)
{
    auto r = runJoiner(JoinMode::Inner,
                       keyedFlits({{1, 10}, {2, 20}, {4, 40}}),
                       keyedFlits({{2, 200}, {3, 300}, {4, 400}}));
    // Matching keys 2 and 4, then the item boundary.
    ASSERT_EQ(r.out.size(), 3u);
    EXPECT_EQ(r.out[0].key, 2);
    EXPECT_EQ(r.out[0].fieldAt(0), 20);
    EXPECT_EQ(r.out[0].fieldAt(1), 200);
    EXPECT_EQ(r.out[1].key, 4);
    EXPECT_TRUE(sim::isBoundary(r.out[2]));
}

TEST(Joiner, LeftJoinPadsUnmatched)
{
    auto r = runJoiner(JoinMode::Left, keyedFlits({{1, 10}, {2, 20}}),
                       keyedFlits({{2, 200}}));
    ASSERT_EQ(r.out.size(), 3u);
    EXPECT_EQ(r.out[0].key, 1);
    EXPECT_EQ(r.out[0].fieldAt(1), Flit::kNull);
    EXPECT_EQ(r.out[1].fieldAt(1), 200);
}

TEST(Joiner, OuterJoinKeepsBothSides)
{
    auto r = runJoiner(JoinMode::Outer, keyedFlits({{1, 10}}),
                       keyedFlits({{2, 200}}));
    ASSERT_EQ(r.out.size(), 3u);
    EXPECT_EQ(r.out[0].key, 1);
    EXPECT_EQ(r.out[1].key, 2);
    EXPECT_EQ(r.out[1].fieldAt(0), Flit::kNull);
    EXPECT_EQ(r.out[1].fieldAt(1), 200);
}

TEST(Joiner, InsKeyBypassesComparison)
{
    // An inserted base between keys 5 and 6 must not disturb the merge:
    // inner join drops it, left join emits it padded.
    std::vector<Flit> left = {makeFlit(5, 50), makeFlit(Flit::kIns, 99),
                              makeFlit(6, 60), makeBoundary()};
    auto inner = runJoiner(JoinMode::Inner, left,
                           keyedFlits({{5, 500}, {6, 600}}));
    ASSERT_EQ(inner.out.size(), 3u);
    EXPECT_EQ(inner.out[0].key, 5);
    EXPECT_EQ(inner.out[1].key, 6);

    auto lj = runJoiner(JoinMode::Left, left,
                        keyedFlits({{5, 500}, {6, 600}}));
    ASSERT_EQ(lj.out.size(), 4u);
    EXPECT_EQ(lj.out[1].key, Flit::kIns);
    EXPECT_EQ(lj.out[1].fieldAt(0), 99);
    EXPECT_EQ(lj.out[1].fieldAt(1), Flit::kNull);
}

TEST(Joiner, ItemAlignmentResyncsAcrossBoundaries)
{
    // Two items whose key ranges overlap: the joiner must restart the
    // merge at each boundary rather than treating keys globally.
    std::vector<Flit> left, right;
    auto append_item = [](std::vector<Flit> &v,
                          std::initializer_list<std::pair<int64_t,
                                                          int64_t>> kvs) {
        for (auto [k, val] : kvs)
            v.push_back(makeFlit(k, val));
        v.push_back(makeBoundary());
    };
    append_item(left, {{10, 1}, {11, 2}});
    append_item(left, {{5, 3}, {6, 4}}); // restarts below 10
    append_item(right, {{10, 100}, {11, 110}});
    append_item(right, {{5, 50}, {6, 60}});
    auto r = runJoiner(JoinMode::Inner, left, right);
    ASSERT_EQ(r.out.size(), 6u);
    EXPECT_EQ(r.out[0].key, 10);
    EXPECT_TRUE(sim::isBoundary(r.out[2]));
    EXPECT_EQ(r.out[3].key, 5);
    EXPECT_EQ(r.out[4].fieldAt(1), 60);
    EXPECT_TRUE(sim::isBoundary(r.out[5]));
}

TEST(Joiner, UnevenItemLengths)
{
    // Right side runs past the left item: extra right flits drop (inner)
    // while boundaries stay aligned.
    std::vector<Flit> left = {makeFlit(1, 10), makeBoundary()};
    std::vector<Flit> right = {makeFlit(1, 100), makeFlit(2, 200),
                               makeFlit(3, 300), makeBoundary()};
    auto r = runJoiner(JoinMode::Inner, left, right);
    ASSERT_EQ(r.out.size(), 2u);
    EXPECT_EQ(r.out[0].key, 1);
    EXPECT_TRUE(sim::isBoundary(r.out[1]));
}

// --- Filter / Fork ----------------------------------------------------------

TEST(Filter, DropModeKeepsMatchesAndBoundaries)
{
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *out = sim.makeQueue("out");
    sim.make<VectorSource>(
        "src", in,
        std::vector<Flit>{makeFlit(0, 5, 5), makeFlit(0, 5, 6),
                          makeBoundary(), makeFlit(0, 7, 7)});
    FilterConfig cfg;
    cfg.lhs = FilterOperand::field(0);
    cfg.op = CompareOp::Eq;
    cfg.rhs = FilterOperand::field(1);
    sim.make<Filter>("f", in, out, cfg);
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    ASSERT_EQ(sink->collected().size(), 3u);
    EXPECT_TRUE(sim::isBoundary(sink->collected()[1]));
}

TEST(Filter, MaskModeAppendsMatchBit)
{
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *out = sim.makeQueue("out");
    sim.make<VectorSource>("src", in,
                           std::vector<Flit>{makeFlit(0, 5, 5),
                                             makeFlit(0, 5, 6)});
    FilterConfig cfg;
    cfg.lhs = FilterOperand::field(0);
    cfg.op = CompareOp::Ne;
    cfg.rhs = FilterOperand::field(1);
    cfg.maskMode = true;
    sim.make<Filter>("f", in, out, cfg);
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    ASSERT_EQ(sink->collected().size(), 2u);
    EXPECT_EQ(sink->collected()[0].fieldAt(2), 0);
    EXPECT_EQ(sink->collected()[1].fieldAt(2), 1);
}

TEST(Filter, ConstantAndKeyOperands)
{
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *out = sim.makeQueue("out");
    sim.make<VectorSource>("src", in,
                           std::vector<Flit>{makeFlit(3, 0),
                                             makeFlit(9, 0)});
    FilterConfig cfg;
    cfg.lhs = FilterOperand::key();
    cfg.op = CompareOp::Gt;
    cfg.rhs = FilterOperand::constant_(5);
    sim.make<Filter>("f", in, out, cfg);
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    ASSERT_EQ(sink->collected().size(), 1u);
    EXPECT_EQ(sink->collected()[0].key, 9);
}

TEST(Filter, SentinelsCompareUnequalToRealValues)
{
    FilterConfig cfg;
    cfg.lhs = FilterOperand::field(0);
    cfg.op = CompareOp::Ne;
    cfg.rhs = FilterOperand::field(1);
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *out = sim.makeQueue("out");
    Filter filter("f", in, out, cfg);
    EXPECT_TRUE(filter.matches(makeFlit(0, Flit::kDel, 2)));
    EXPECT_TRUE(filter.matches(makeFlit(0, 1, Flit::kNull)));
    EXPECT_FALSE(filter.matches(makeFlit(0, 2, 2)));
}

TEST(Fork, ReplicatesToAllOutputs)
{
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *o1 = sim.makeQueue("o1");
    auto *o2 = sim.makeQueue("o2");
    sim.make<VectorSource>("src", in,
                           std::vector<Flit>{makeFlit(1, 10),
                                             makeBoundary()});
    sim.make<Fork>("fork", in,
                   std::vector<HardwareQueue *>{o1, o2});
    auto *s1 = sim.make<VectorSink>("s1", o1);
    auto *s2 = sim.make<VectorSink>("s2", o2);
    sim.run();
    ASSERT_EQ(s1->collected().size(), 2u);
    ASSERT_EQ(s2->collected().size(), 2u);
    EXPECT_EQ(s1->collected()[0].fieldAt(0), 10);
    EXPECT_EQ(s2->collected()[0].fieldAt(0), 10);
}

// --- Reducer ----------------------------------------------------------------

TEST(Reducer, WholeStreamSum)
{
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *out = sim.makeQueue("out");
    sim.make<VectorSource>("src", in,
                           std::vector<Flit>{makeFlit(0, 1),
                                             makeFlit(0, 2),
                                             makeFlit(0, 4)});
    ReducerConfig cfg;
    cfg.op = ReduceOp::Sum;
    sim.make<Reducer>("red", in, out, cfg);
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    ASSERT_EQ(sink->collected().size(), 1u);
    EXPECT_EQ(sink->collected()[0].fieldAt(0), 7);
}

TEST(Reducer, PerItemCountAtBoundaries)
{
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *out = sim.makeQueue("out");
    sim.make<VectorSource>(
        "src", in,
        std::vector<Flit>{makeFlit(0, 1), makeFlit(0, 1),
                          makeBoundary(), makeBoundary(),
                          makeFlit(0, 1), makeBoundary()});
    ReducerConfig cfg;
    cfg.op = ReduceOp::Count;
    cfg.granularity = ReduceGranularity::PerItem;
    sim.make<Reducer>("red", in, out, cfg);
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    ASSERT_EQ(sink->collected().size(), 3u);
    EXPECT_EQ(sink->collected()[0].fieldAt(0), 2);
    EXPECT_EQ(sink->collected()[1].fieldAt(0), 0); // empty item
    EXPECT_EQ(sink->collected()[2].fieldAt(0), 1);
    // Item index rides on the key.
    EXPECT_EQ(sink->collected()[2].key, 2);
}

TEST(Reducer, MaskedSumSkipsUnmaskedAndSentinels)
{
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *out = sim.makeQueue("out");
    // field0 = value, field1 = mask.
    sim.make<VectorSource>(
        "src", in,
        std::vector<Flit>{makeFlit(0, 10, 1), makeFlit(0, 20, 0),
                          makeFlit(0, Flit::kDel, 1),
                          makeFlit(0, 5, 1)});
    ReducerConfig cfg;
    cfg.op = ReduceOp::Sum;
    cfg.valueField = 0;
    cfg.maskField = 1;
    sim.make<Reducer>("red", in, out, cfg);
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    ASSERT_EQ(sink->collected().size(), 1u);
    EXPECT_EQ(sink->collected()[0].fieldAt(0), 15);
}

TEST(Reducer, MinMaxAndEmptyStream)
{
    auto run_op = [](ReduceOp op, std::vector<Flit> flits) {
        Simulator sim;
        auto *in = sim.makeQueue("in");
        auto *out = sim.makeQueue("out");
        sim.make<VectorSource>("src", in, std::move(flits));
        ReducerConfig cfg;
        cfg.op = op;
        sim.make<Reducer>("red", in, out, cfg);
        auto *sink = sim.make<VectorSink>("sink", out);
        sim.run();
        return sink->collected().at(0).fieldAt(0);
    };
    EXPECT_EQ(run_op(ReduceOp::Min,
                     {makeFlit(0, 5), makeFlit(0, -3), makeFlit(0, 9)}),
              -3);
    EXPECT_EQ(run_op(ReduceOp::Max,
                     {makeFlit(0, 5), makeFlit(0, -3), makeFlit(0, 9)}),
              9);
    EXPECT_EQ(run_op(ReduceOp::Min, {}), Flit::kNull);
    EXPECT_EQ(run_op(ReduceOp::Sum, {}), 0);
}

// --- StreamAlu ---------------------------------------------------------------

TEST(StreamAlu, BinaryTwoQueues)
{
    Simulator sim;
    auto *a = sim.makeQueue("a");
    auto *b = sim.makeQueue("b");
    auto *out = sim.makeQueue("out");
    sim.make<VectorSource>("sa", a,
                           std::vector<Flit>{makeFlit(0, 3),
                                             makeFlit(1, 4)});
    sim.make<VectorSource>("sb", b,
                           std::vector<Flit>{makeFlit(0, 10),
                                             makeFlit(1, 20)});
    StreamAluConfig cfg;
    cfg.op = AluOp::Add;
    sim.make<StreamAlu>("alu", a, b, out, cfg);
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    ASSERT_EQ(sink->collected().size(), 2u);
    EXPECT_EQ(sink->collected()[0].fieldAt(0), 13);
    EXPECT_EQ(sink->collected()[1].fieldAt(0), 24);
}

TEST(StreamAlu, UnaryWithConstant)
{
    Simulator sim;
    auto *a = sim.makeQueue("a");
    auto *out = sim.makeQueue("out");
    sim.make<VectorSource>("sa", a, std::vector<Flit>{makeFlit(0, 6)});
    StreamAluConfig cfg;
    cfg.op = AluOp::Mul;
    cfg.constantB = 7;
    sim.make<StreamAlu>("alu", a, out, cfg);
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    EXPECT_EQ(sink->collected().at(0).fieldAt(0), 42);
}

TEST(StreamAlu, PackOperation)
{
    EXPECT_EQ(StreamAlu::apply(AluOp::Pack, 3, 1), 3 | (1 << 8));
    EXPECT_EQ(StreamAlu::apply(AluOp::Cmp, 4, 4), 1);
    EXPECT_EQ(StreamAlu::apply(AluOp::Cmp, 4, 5), 0);
    EXPECT_EQ(StreamAlu::apply(AluOp::Not, 0, 0), ~0ll);
}

TEST(StreamAlu, AlignedBoundariesPass)
{
    Simulator sim;
    auto *a = sim.makeQueue("a");
    auto *b = sim.makeQueue("b");
    auto *out = sim.makeQueue("out");
    sim.make<VectorSource>("sa", a,
                           std::vector<Flit>{makeFlit(0, 1),
                                             makeBoundary()});
    sim.make<VectorSource>("sb", b,
                           std::vector<Flit>{makeFlit(0, 2),
                                             makeBoundary()});
    StreamAluConfig cfg;
    cfg.op = AluOp::Add;
    sim.make<StreamAlu>("alu", a, b, out, cfg);
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    ASSERT_EQ(sink->collected().size(), 2u);
    EXPECT_TRUE(sim::isBoundary(sink->collected()[1]));
}

// --- ReadToBases --------------------------------------------------------------

TEST(ReadToBases, Figure3Example)
{
    using genome::charToBase;
    Simulator sim;
    auto *pos_q = sim.makeQueue("pos");
    auto *cigar_q = sim.makeQueue("cigar");
    auto *seq_q = sim.makeQueue("seq");
    auto *qual_q = sim.makeQueue("qual");
    auto *out_q = sim.makeQueue("out");

    sim.make<VectorSource>("pos", pos_q,
                           std::vector<Flit>{makeFlit(104)});
    std::vector<Flit> cigar;
    for (uint16_t raw :
         genome::Cigar::parse("2S3M1I1M1D2M").packAll()) {
        cigar.push_back(makeFlit(raw));
    }
    cigar.push_back(makeBoundary());
    sim.make<VectorSource>("cigar", cigar_q, cigar);

    std::vector<Flit> seq;
    for (uint8_t b : genome::stringToSequence("AGGTAAACA"))
        seq.push_back(makeFlit(b));
    seq.push_back(makeBoundary());
    sim.make<VectorSource>("seq", seq_q, seq);

    std::vector<Flit> qual;
    for (char c : std::string("##9>>AAB?"))
        qual.push_back(makeFlit(c - 33));
    qual.push_back(makeBoundary());
    sim.make<VectorSource>("qual", qual_q, qual);

    sim.make<ReadToBases>("rtb", pos_q, cigar_q, seq_q, qual_q, out_q);
    auto *sink = sim.make<VectorSink>("sink", out_q);
    sim.run();

    auto data = sink->dataFlits();
    ASSERT_EQ(data.size(), 8u);
    EXPECT_EQ(data[0].key, 104);
    EXPECT_EQ(data[0].fieldAt(0), charToBase('G'));
    EXPECT_EQ(data[0].fieldAt(1), '9' - 33);
    EXPECT_EQ(data[0].fieldAt(2), 0); // first unclipped cycle
    EXPECT_EQ(data[3].key, Flit::kIns);
    EXPECT_EQ(data[5].fieldAt(0), Flit::kDel);
    EXPECT_EQ(data[5].key, 108);
    EXPECT_EQ(data[7].key, 110);
    // One boundary after the read.
    EXPECT_EQ(sink->collected().size(), 9u);
    EXPECT_TRUE(sim::isBoundary(sink->collected().back()));
}

TEST(ReadToBases, MultipleReadsKeepBoundaries)
{
    Simulator sim;
    auto *pos_q = sim.makeQueue("pos");
    auto *cigar_q = sim.makeQueue("cigar");
    auto *seq_q = sim.makeQueue("seq");
    auto *out_q = sim.makeQueue("out");

    sim.make<VectorSource>("pos", pos_q,
                           std::vector<Flit>{makeFlit(10),
                                             makeFlit(50)});
    std::vector<Flit> cigar;
    for (uint16_t raw : genome::Cigar::parse("2M").packAll())
        cigar.push_back(makeFlit(raw));
    cigar.push_back(makeBoundary());
    for (uint16_t raw : genome::Cigar::parse("1M1D1M").packAll())
        cigar.push_back(makeFlit(raw));
    cigar.push_back(makeBoundary());
    sim.make<VectorSource>("cigar", cigar_q, cigar);

    std::vector<Flit> seq = {makeFlit(0), makeFlit(1), makeBoundary(),
                             makeFlit(2), makeFlit(3), makeBoundary()};
    sim.make<VectorSource>("seq", seq_q, seq);

    sim.make<ReadToBases>("rtb", pos_q, cigar_q, seq_q, nullptr, out_q);
    auto *sink = sim.make<VectorSink>("sink", out_q);
    sim.run();

    const auto &flits = sink->collected();
    // Read 1: 10,11 B ; read 2: 50, 51(del), 52 B.
    ASSERT_EQ(flits.size(), 7u);
    EXPECT_EQ(flits[0].key, 10);
    EXPECT_TRUE(sim::isBoundary(flits[2]));
    EXPECT_EQ(flits[3].key, 50);
    EXPECT_EQ(flits[4].fieldAt(0), Flit::kDel);
    EXPECT_EQ(flits[5].key, 52);
    // QUAL field reads Null when no QUAL stream is attached.
    EXPECT_EQ(flits[0].fieldAt(1), Flit::kNull);
}

// --- MDGen ---------------------------------------------------------------------

std::string
runMdGen(const std::vector<Flit> &joined)
{
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *out = sim.makeQueue("out");
    sim.make<VectorSource>("src", in, joined);
    sim.make<MdGen>("md", in, out);
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    std::string text;
    for (const auto &f : sink->dataFlits())
        text.push_back(static_cast<char>(f.key));
    return text;
}

/** Join-output flit: key=pos, fields [bp, qual, cycle, refbase]. */
Flit
joinedFlit(int64_t pos, int64_t bp, int64_t ref)
{
    Flit f = makeFlit(pos, bp, 30, 0);
    f.pushField(ref);
    return f;
}

TEST(MdGen, Figure2Read1)
{
    // Read 1 of Figure 2: mismatches at base 2 (ref C) and 9 (ref A),
    // the insertion invisible to MD -> "1C6A3".
    std::vector<Flit> joined;
    int64_t pos = 0;
    auto match = [&](int n) {
        for (int i = 0; i < n; ++i)
            joined.push_back(joinedFlit(pos++, 1, 1));
    };
    match(1);
    joined.push_back(joinedFlit(pos++, 2, 1)); // mismatch, ref C=1
    match(5);
    Flit ins = makeFlit(Flit::kIns, 0, 30, 0);
    ins.pushField(Flit::kNull);
    joined.push_back(ins); // the insertion never appears in MD
    match(1);              // the match run continues across it
    joined.push_back(joinedFlit(pos++, 2, 0)); // mismatch, ref A=0
    match(3);
    joined.push_back(makeBoundary());

    // ref codes: C=1 -> 'C', A=0 -> 'A'.
    EXPECT_EQ(runMdGen(joined), "1C6A3");
}

TEST(MdGen, DeletionRun)
{
    std::vector<Flit> joined;
    joined.push_back(joinedFlit(0, 1, 1));
    joined.push_back(joinedFlit(1, Flit::kDel, 0)); // ^A
    joined.push_back(joinedFlit(2, Flit::kDel, 1)); // C
    joined.push_back(joinedFlit(3, 2, 2));          // match G
    joined.push_back(makeBoundary());
    EXPECT_EQ(runMdGen(joined), "1^AC1");
}

TEST(MdGen, MismatchDirectlyAfterDeletionEmitsZero)
{
    std::vector<Flit> joined;
    joined.push_back(joinedFlit(0, Flit::kDel, 0)); // ^A
    joined.push_back(joinedFlit(1, 2, 3));          // mismatch ref T
    joined.push_back(makeBoundary());
    // MD strings always end with a (possibly zero) match count.
    EXPECT_EQ(runMdGen(joined), "0^A0T0");
}

TEST(MdGen, PerReadBoundariesSeparateTags)
{
    std::vector<Flit> joined;
    joined.push_back(joinedFlit(0, 1, 1));
    joined.push_back(makeBoundary());
    joined.push_back(joinedFlit(5, 0, 1)); // mismatch ref C
    joined.push_back(makeBoundary());

    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *out = sim.makeQueue("out");
    sim.make<VectorSource>("src", in, joined);
    sim.make<MdGen>("md", in, out);
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    const auto &flits = sink->collected();
    // "1" B "0C0" B
    ASSERT_EQ(flits.size(), 6u);
    EXPECT_EQ(static_cast<char>(flits[0].key), '1');
    EXPECT_TRUE(sim::isBoundary(flits[1]));
    EXPECT_EQ(static_cast<char>(flits[2].key), '0');
    EXPECT_EQ(static_cast<char>(flits[3].key), 'C');
    EXPECT_TRUE(sim::isBoundary(flits[5]));
}

// --- BinIDGen -------------------------------------------------------------------

TEST(BinIdGen, ComputesBothBinIds)
{
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *flags = sim.makeQueue("flags");
    auto *out = sim.makeQueue("out");
    // Two bases of a forward read: A then C, both q=30.
    sim.make<VectorSource>("src", in,
                           std::vector<Flit>{makeFlit(100, 0, 30, 0),
                                             makeFlit(101, 1, 30, 1),
                                             makeBoundary()});
    sim.make<VectorSource>("flg", flags,
                           std::vector<Flit>{makeFlit(0)});
    BinIdGenConfig cfg;
    sim.make<BinIdGen>("bin", in, flags, out, cfg);
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    auto data = sink->dataFlits();
    ASSERT_EQ(data.size(), 2u);
    // b1 = q*302 + cycle; first base has no context -> b2 Null.
    EXPECT_EQ(data[0].fieldAt(2), 30 * 302 + 0);
    EXPECT_EQ(data[0].fieldAt(3), Flit::kNull);
    // Second base: context AC = 0*4+1 = 1 -> b2 = 30*16 + 1.
    EXPECT_EQ(data[1].fieldAt(2), 30 * 302 + 1);
    EXPECT_EQ(data[1].fieldAt(3), 30 * 16 + 1);
}

TEST(BinIdGen, ReverseReadsUseSecondCycleBank)
{
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *flags = sim.makeQueue("flags");
    auto *out = sim.makeQueue("out");
    sim.make<VectorSource>("src", in,
                           std::vector<Flit>{makeFlit(100, 0, 20, 3),
                                             makeBoundary()});
    sim.make<VectorSource>(
        "flg", flags,
        std::vector<Flit>{makeFlit(genome::kFlagReverse)});
    sim.make<BinIdGen>("bin", in, flags, out, BinIdGenConfig{});
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    auto data = sink->dataFlits();
    ASSERT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0].fieldAt(2), 20 * 302 + 151 + 3);
}

TEST(BinIdGen, DeletionsAndNBasesGetNullBins)
{
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *flags = sim.makeQueue("flags");
    auto *out = sim.makeQueue("out");
    sim.make<VectorSource>(
        "src", in,
        std::vector<Flit>{
            makeFlit(100, 0, 30, 0),
            makeFlit(101, Flit::kDel, Flit::kDel, Flit::kDel),
            makeFlit(102, 4, 30, 1), // N base
            makeBoundary()});
    sim.make<VectorSource>("flg", flags,
                           std::vector<Flit>{makeFlit(0)});
    sim.make<BinIdGen>("bin", in, flags, out, BinIdGenConfig{});
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    auto data = sink->dataFlits();
    ASSERT_EQ(data.size(), 3u);
    EXPECT_NE(data[0].fieldAt(2), Flit::kNull);
    EXPECT_EQ(data[1].fieldAt(2), Flit::kNull);
    EXPECT_EQ(data[1].fieldAt(3), Flit::kNull);
    EXPECT_EQ(data[2].fieldAt(2), Flit::kNull);
}

TEST(BinIdGen, ContextSurvivesDeletions)
{
    // Base, deletion, base: the second base's context comes from the
    // first base (deletions provide no read base).
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *flags = sim.makeQueue("flags");
    auto *out = sim.makeQueue("out");
    sim.make<VectorSource>(
        "src", in,
        std::vector<Flit>{
            makeFlit(100, 2, 30, 0), // G
            makeFlit(101, Flit::kDel, Flit::kDel, Flit::kDel),
            makeFlit(102, 3, 30, 1), // T, context GT = 2*4+3
            makeBoundary()});
    sim.make<VectorSource>("flg", flags,
                           std::vector<Flit>{makeFlit(0)});
    sim.make<BinIdGen>("bin", in, flags, out, BinIdGenConfig{});
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    auto data = sink->dataFlits();
    ASSERT_EQ(data.size(), 3u);
    EXPECT_EQ(data[2].fieldAt(3), 30 * 16 + (2 * 4 + 3));
}

TEST(BinIdGen, TableSizes)
{
    BinIdGenConfig cfg;
    EXPECT_EQ(BinIdGen::tableSize(cfg, true), 42u * 302u);
    EXPECT_EQ(BinIdGen::tableSize(cfg, false), 42u * 16u);
}

// --- Custom module registry ------------------------------------------------------

TEST(CustomRegistry, BuiltinsPresent)
{
    auto &reg = CustomModuleRegistry::global();
    EXPECT_TRUE(reg.has("MDGen"));
    EXPECT_TRUE(reg.has("BinIDGen"));
    EXPECT_EQ(reg.numInputs("MDGen"), 1u);
    EXPECT_EQ(reg.numInputs("BinIDGen"), 2u);
}

TEST(CustomRegistry, InstantiateAndRun)
{
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *out = sim.makeQueue("out");
    sim.make<VectorSource>("src", in,
                           std::vector<Flit>{joinedFlit(0, 1, 1),
                                             makeBoundary()});
    sim.addModule(CustomModuleRegistry::global().instantiate(
        "MDGen", "md", {in}, out));
    auto *sink = sim.make<VectorSink>("sink", out);
    sim.run();
    ASSERT_EQ(sink->dataFlits().size(), 1u);
    EXPECT_EQ(static_cast<char>(sink->dataFlits()[0].key), '1');
}

TEST(CustomRegistry, UserRegistration)
{
    auto &reg = CustomModuleRegistry::global();
    reg.add("TestPassthrough",
            [](const std::string &name,
               const std::vector<HardwareQueue *> &inputs,
               HardwareQueue *out) -> std::unique_ptr<sim::Module> {
                StreamAluConfig cfg;
                cfg.op = AluOp::Add;
                cfg.constantB = 0;
                return std::make_unique<StreamAlu>(name, inputs[0], out,
                                                   cfg);
            },
            1);
    EXPECT_TRUE(reg.has("TestPassthrough"));
    EXPECT_THROW(reg.instantiate("TestPassthrough", "x", {}, nullptr),
                 FatalError);
    EXPECT_THROW(reg.instantiate("Missing", "x", {}, nullptr),
                 FatalError);
}

} // namespace
} // namespace genesis::modules

/**
 * @file
 * Integration tests: each Genesis accelerator (simulated hardware) must
 * produce byte-identical results to the software baseline, across seeds.
 * These are the strongest correctness statements in the repository —
 * they exercise memory readers, ReadToBases, SPMs, joiners, filters,
 * reducers, custom modules, writers, arbitration and the host runtime
 * together.
 */

#include <gtest/gtest.h>

#include "base/logging.h"
#include "core/bqsr_accel.h"
#include "core/example_accel.h"
#include "core/markdup_accel.h"
#include "core/metadata_accel.h"
#include "gatk/bqsr.h"
#include "gatk/markdup.h"
#include "gatk/metadata.h"
#include "sim_test_utils.h"

namespace genesis::core {
namespace {

class AccelEquivalence : public ::testing::TestWithParam<uint64_t>
{
  protected:
    void
    SetUp() override
    {
        workload_ = test::makeSmallWorkload(GetParam(), 250, 40'000, 2);
    }

    test::SmallWorkload workload_;
};

TEST_P(AccelEquivalence, ExampleMatchCountsEqualSoftware)
{
    ExampleAccelConfig cfg;
    cfg.numPipelines = 3;
    cfg.psize = 8'192;
    ExampleAccelerator accel(cfg);
    auto result = accel.run(workload_.reads.reads, workload_.genome);

    std::vector<size_t> all(workload_.reads.reads.size());
    for (size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    auto expected =
        matchCountsSoftware(workload_.reads.reads, all,
                            workload_.genome);
    ASSERT_EQ(result.counts.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(result.counts[i], expected[i]) << "read " << i;
    EXPECT_GT(result.info.totalCycles, 0u);
}

TEST_P(AccelEquivalence, MarkDupSumsAndFlagsEqualSoftware)
{
    auto hw_reads = workload_.reads.reads;
    auto sw_reads = workload_.reads.reads;

    MarkDupAccelConfig cfg;
    cfg.numPipelines = 4;
    MarkDupAccelerator accel(cfg);
    auto hw = accel.run(hw_reads);

    auto sw_sums = gatk::computeQualSums(sw_reads);
    auto sw_stats = gatk::markDuplicatesWithQualSums(sw_reads, sw_sums);

    EXPECT_EQ(hw.qualSums, sw_sums);
    EXPECT_EQ(hw.stats.duplicatesMarked, sw_stats.duplicatesMarked);
    ASSERT_EQ(hw_reads.size(), sw_reads.size());
    for (size_t i = 0; i < hw_reads.size(); ++i) {
        EXPECT_EQ(hw_reads[i].name, sw_reads[i].name);
        EXPECT_EQ(hw_reads[i].isDuplicate(), sw_reads[i].isDuplicate());
    }
}

TEST_P(AccelEquivalence, MetadataTagsEqualSoftware)
{
    auto hw_reads = workload_.reads.reads;
    auto sw_reads = workload_.reads.reads;

    MetadataAccelConfig cfg;
    cfg.numPipelines = 4;
    cfg.psize = 8'192;
    MetadataAccelerator accel(cfg);
    auto result = accel.run(hw_reads, workload_.genome);
    EXPECT_EQ(result.readsTagged,
              static_cast<int64_t>(hw_reads.size()));

    gatk::setNmMdUqTags(sw_reads, workload_.genome);
    for (size_t i = 0; i < hw_reads.size(); ++i) {
        EXPECT_EQ(hw_reads[i].nmTag, sw_reads[i].nmTag)
            << "NM of read " << i << " (" << hw_reads[i].name << ")";
        EXPECT_EQ(hw_reads[i].mdTag, sw_reads[i].mdTag)
            << "MD of read " << i;
        EXPECT_EQ(hw_reads[i].uqTag, sw_reads[i].uqTag)
            << "UQ of read " << i;
    }
}

TEST_P(AccelEquivalence, BqsrCovariateTableEqualsSoftware)
{
    BqsrAccelConfig cfg;
    cfg.numPipelines = 4;
    cfg.psize = 8'192;
    BqsrAccelerator accel(cfg);
    auto hw = accel.run(workload_.reads.reads, workload_.genome);

    auto sw = gatk::buildCovariateTable(workload_.reads.reads,
                                        workload_.genome, cfg.bqsr);
    EXPECT_EQ(hw.table.totalObservations(), sw.totalObservations());
    EXPECT_EQ(hw.table.totalErrors(), sw.totalErrors());
    EXPECT_TRUE(hw.table == sw) << "covariate tables differ";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccelEquivalence,
                         ::testing::Values(3u, 11u, 29u));

TEST(AccelBehaviour, MorePipelinesDoNotChangeResults)
{
    auto w = test::makeSmallWorkload(5, 150, 30'000, 1);
    ExampleAccelConfig one;
    one.numPipelines = 1;
    one.psize = 6'000;
    ExampleAccelConfig many;
    many.numPipelines = 6;
    many.psize = 6'000;
    auto r1 = ExampleAccelerator(one).run(w.reads.reads, w.genome);
    auto r6 = ExampleAccelerator(many).run(w.reads.reads, w.genome);
    EXPECT_EQ(r1.counts, r6.counts);
    // Parallelism shrinks total simulated time (more pipelines per
    // batch, fewer sequential batches).
    EXPECT_LT(r6.info.totalCycles, r1.info.totalCycles);
}

TEST(AccelBehaviour, TimingLedgersPopulated)
{
    auto w = test::makeSmallWorkload(7, 120, 30'000, 1);
    MetadataAccelConfig cfg;
    cfg.numPipelines = 2;
    cfg.psize = 8'192;
    auto result = MetadataAccelerator(cfg).run(w.reads.reads, w.genome);
    EXPECT_GT(result.info.timing.dmaSeconds, 0.0);
    EXPECT_GT(result.info.timing.accelSeconds, 0.0);
    EXPECT_GT(result.info.timing.hostSeconds, 0.0);
    EXPECT_GT(result.info.batches, 0u);
    EXPECT_GT(result.info.stats.get("cycles"), 0u);
}

TEST(AccelBehaviour, CensusCountsModules)
{
    auto census = MarkDupAccelerator::census(16);
    EXPECT_EQ(census.numPipelines, 16);
    EXPECT_EQ(census.moduleCounts.at("MemoryReader"), 16);
    EXPECT_EQ(census.moduleCounts.at("ReducerWide"), 16);
    EXPECT_EQ(census.moduleCounts.at("MemoryWriter"), 16);

    auto meta = MetadataAccelerator::census(16);
    EXPECT_EQ(meta.moduleCounts.at("MemoryReader"), 16 * 6);
    EXPECT_EQ(meta.moduleCounts.at("MDGen"), 16);
    EXPECT_GT(meta.spmBits, 0u);

    auto bqsr = BqsrAccelerator::census(8);
    EXPECT_EQ(bqsr.moduleCounts.at("SpmUpdaterRMW"), 8 * 4);
    EXPECT_EQ(bqsr.moduleCounts.at("BinIDGen"), 8);
}

TEST(AccelBehaviour, RmwHazardStallsObservedInBqsr)
{
    auto w = test::makeSmallWorkload(9, 150, 30'000, 1);
    BqsrAccelConfig cfg;
    cfg.numPipelines = 2;
    cfg.psize = 8'192;
    auto result = BqsrAccelerator(cfg).run(w.reads.reads, w.genome);
    // Consecutive bases with equal quality and context collide in the
    // covariate counters; the interlock must have fired at least once.
    uint64_t hazard_stalls = 0;
    for (const auto &[name, value] : result.info.stats.counters()) {
        if (name.find("rmw_hazard") != std::string::npos)
            hazard_stalls += value;
    }
    EXPECT_GT(hazard_stalls, 0u);
}

} // namespace
} // namespace genesis::core

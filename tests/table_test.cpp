/**
 * @file
 * Unit tests for src/table: values, columns (incl. device serialisation),
 * schemas, tables, the Table-I genomic schemas, and the partitioner.
 */

#include <gtest/gtest.h>

#include "base/logging.h"
#include "sim_test_utils.h"
#include "table/genomic_schema.h"
#include "table/partition.h"
#include "table/table.h"

namespace genesis::table {
namespace {

TEST(Value, TypePredicates)
{
    EXPECT_TRUE(Value().isNull());
    EXPECT_TRUE(Value(5).isInt());
    EXPECT_TRUE(Value("x").isString());
    EXPECT_TRUE(Value(Blob{1, 2}).isBlob());
}

TEST(Value, AsAccessorsThrowOnMismatch)
{
    EXPECT_THROW(Value("s").asInt(), FatalError);
    EXPECT_THROW(Value(1).asString(), FatalError);
    EXPECT_THROW(Value(1).asBlob(), FatalError);
}

TEST(Value, Truthiness)
{
    EXPECT_FALSE(Value().truthy());
    EXPECT_FALSE(Value(0).truthy());
    EXPECT_TRUE(Value(-1).truthy());
    EXPECT_FALSE(Value("").truthy());
    EXPECT_TRUE(Value("a").truthy());
    EXPECT_FALSE(Value(Blob{}).truthy());
}

TEST(Value, OrderingAcrossKinds)
{
    EXPECT_TRUE(Value() < Value(0));
    EXPECT_TRUE(Value(5) < Value("a"));
    EXPECT_TRUE(Value("a") < Value(Blob{}));
    EXPECT_TRUE(Value(1) < Value(2));
    EXPECT_FALSE(Value(2) < Value(1));
}

TEST(Value, StrRendering)
{
    EXPECT_EQ(Value().str(), "NULL");
    EXPECT_EQ(Value(42).str(), "42");
    EXPECT_EQ(Value("hi").str(), "'hi'");
    EXPECT_EQ(Value(Blob{1, 2}).str(), "[1,2]");
}

TEST(Column, ScalarAppendAndRead)
{
    Column col("POS", DataType::UInt32);
    col.appendScalar(7);
    col.append(Value(9));
    EXPECT_EQ(col.size(), 2u);
    EXPECT_EQ(col.scalarAt(0), 7);
    EXPECT_EQ(col.value(1).asInt(), 9);
    EXPECT_EQ(col.elementCount(0), 1u);
}

TEST(Column, ArrayAppendAndRead)
{
    Column col("SEQ", DataType::Array8);
    col.appendArray({0, 1, 2});
    col.appendArray({});
    col.appendArray({3});
    EXPECT_EQ(col.size(), 3u);
    EXPECT_EQ(col.elementCount(0), 3u);
    EXPECT_EQ(col.elementCount(1), 0u);
    EXPECT_EQ(col.elementAt(2, 0), 3);
    EXPECT_EQ(col.value(0).asBlob(), (Blob{0, 1, 2}));
}

TEST(Column, TypeMismatchPanics)
{
    setQuiet(true);
    Column scalar("A", DataType::UInt8);
    EXPECT_THROW(scalar.appendArray({1}), PanicError);
    Column array("B", DataType::Array8);
    EXPECT_THROW(array.appendScalar(1), PanicError);
    setQuiet(false);
}

TEST(Column, SerializeScalarLittleEndian)
{
    Column col("POS", DataType::UInt32);
    col.appendScalar(0x01020304);
    std::vector<uint8_t> raw;
    std::vector<uint32_t> lens;
    col.serialize(raw, lens);
    ASSERT_EQ(raw.size(), 4u);
    EXPECT_EQ(raw[0], 0x04);
    EXPECT_EQ(raw[3], 0x01);
    EXPECT_EQ(lens, (std::vector<uint32_t>{1}));
}

TEST(Column, SerializeArrayRows)
{
    Column col("CIGAR", DataType::Array16);
    col.appendArray({0x0102, 0x0304});
    col.appendArray({0x0506});
    std::vector<uint8_t> raw;
    std::vector<uint32_t> lens;
    col.serialize(raw, lens);
    EXPECT_EQ(raw.size(), 6u);
    EXPECT_EQ(lens, (std::vector<uint32_t>{2, 1}));
    EXPECT_EQ(raw[0], 0x02);
    EXPECT_EQ(raw[1], 0x01);
}

TEST(Column, SerializeRange)
{
    Column col("A", DataType::UInt8);
    for (int i = 0; i < 5; ++i)
        col.appendScalar(i);
    std::vector<uint8_t> raw;
    std::vector<uint32_t> lens;
    col.serialize(raw, lens, 1, 3);
    EXPECT_EQ(raw, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(Column, StringColumnNotStreamable)
{
    EXPECT_THROW(elementSize(DataType::String), FatalError);
}

TEST(Schema, DuplicateFieldFatal)
{
    Schema s;
    s.addField("A", DataType::UInt8);
    EXPECT_THROW(s.addField("A", DataType::UInt8), FatalError);
}

TEST(Schema, IndexOfAndRequire)
{
    Schema s{{"A", DataType::UInt8}, {"B", DataType::Int64}};
    EXPECT_EQ(s.indexOf("B"), 1);
    EXPECT_EQ(s.indexOf("Z"), -1);
    EXPECT_EQ(s.require("A"), 0u);
    EXPECT_THROW(s.require("Z"), FatalError);
}

TEST(Table, AppendAndAccess)
{
    Table t("t", Schema{{"A", DataType::Int64}, {"B", DataType::String}});
    t.appendRow({Value(1), Value("x")});
    t.appendRow({Value(2), Value("y")});
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.at(1, "B").asString(), "y");
    EXPECT_EQ(t.at(0, 0).asInt(), 1);
}

TEST(Table, WidthMismatchFatal)
{
    Table t("t", Schema{{"A", DataType::Int64}});
    EXPECT_THROW(t.appendRow({Value(1), Value(2)}), FatalError);
}

TEST(Table, EmptyLikeCopiesSchemaOnly)
{
    Table t("t", Schema{{"A", DataType::Int64}});
    t.appendRow({Value(1)});
    Table e = t.emptyLike("e");
    EXPECT_EQ(e.numRows(), 0u);
    EXPECT_EQ(e.schema(), t.schema());
    EXPECT_EQ(e.name(), "e");
}

TEST(GenomicSchema, ReadsTableMatchesTableI)
{
    Schema s = readsSchema();
    EXPECT_EQ(s.field(s.require("CHR")).type, DataType::UInt8);
    EXPECT_EQ(s.field(s.require("POS")).type, DataType::UInt32);
    EXPECT_EQ(s.field(s.require("ENDPOS")).type, DataType::UInt32);
    EXPECT_EQ(s.field(s.require("CIGAR")).type, DataType::Array16);
    EXPECT_EQ(s.field(s.require("SEQ")).type, DataType::Array8);
    EXPECT_EQ(s.field(s.require("QUAL")).type, DataType::Array8);
}

TEST(GenomicSchema, BuildReadsTableRoundTrip)
{
    auto w = test::makeSmallWorkload(3, 50);
    Table t = buildReadsTable(w.reads.reads);
    ASSERT_EQ(t.numRows(), w.reads.reads.size());
    for (size_t r = 0; r < t.numRows(); r += 7) {
        const auto &read = w.reads.reads[r];
        EXPECT_EQ(t.at(r, "CHR").asInt(), read.chr);
        EXPECT_EQ(t.at(r, "POS").asInt(), read.pos);
        EXPECT_EQ(t.at(r, "ENDPOS").asInt(), read.endPos());
        EXPECT_EQ(t.at(r, "ROWID").asInt(), static_cast<int64_t>(r));
        auto seq = t.at(r, "SEQ").asBlob();
        ASSERT_EQ(seq.size(), read.seq.size());
        EXPECT_EQ(seq[0], read.seq[0]);
    }
}

TEST(GenomicSchema, RefTableWindowsAndOverlap)
{
    auto w = test::makeSmallWorkload(4, 10, 25'000, 1);
    Table ref = buildRefTable(w.genome, 10'000, 151);
    ASSERT_EQ(ref.numRows(), 3u); // ceil(25000 / 10000)
    EXPECT_EQ(ref.at(0, "REFPOS").asInt(), 0);
    EXPECT_EQ(ref.at(1, "REFPOS").asInt(), 10'000);
    // Interior windows carry PSIZE + overlap bases.
    EXPECT_EQ(ref.at(0, "SEQ").asBlob().size(), 10'151u);
    // The last window is clipped at the chromosome end.
    EXPECT_EQ(ref.at(2, "SEQ").asBlob().size(), 5'000u);
    // IS_SNP mirrors SEQ length.
    EXPECT_EQ(ref.at(0, "IS_SNP").asBlob().size(), 10'151u);
}

TEST(Partitioner, PidDistinctAcrossChromosomesAndWindows)
{
    Partitioner p(1'000'000);
    EXPECT_NE(p.pid(1, 0), p.pid(2, 0));
    EXPECT_NE(p.pid(1, 0), p.pid(1, 1'000'000));
    EXPECT_EQ(p.pid(1, 10), p.pid(1, 999'999));
}

TEST(Partitioner, NegativePositionsClampToWindowZero)
{
    Partitioner p(1000);
    EXPECT_EQ(p.windowIndex(-5), 0);
    EXPECT_EQ(p.pid(1, -5), p.pid(1, 0));
}

TEST(Partitioner, PartitionReadsCoversAllReadsOnce)
{
    auto w = test::makeSmallWorkload(5, 200, 40'000, 2);
    Partitioner p(10'000);
    auto parts = p.partitionReads(w.reads.reads);
    size_t total = 0;
    for (const auto &part : parts) {
        total += part.readIndices.size();
        for (size_t idx : part.readIndices) {
            const auto &read = w.reads.reads[idx];
            EXPECT_EQ(read.chr, part.chr);
            EXPECT_GE(read.pos, part.windowStart);
            EXPECT_LT(read.pos, part.windowEnd);
        }
        // Position-sorted within the partition.
        for (size_t i = 1; i < part.readIndices.size(); ++i) {
            EXPECT_LE(w.reads.reads[part.readIndices[i - 1]].pos,
                      w.reads.reads[part.readIndices[i]].pos);
        }
    }
    EXPECT_EQ(total, w.reads.reads.size());
}

TEST(Partitioner, PartitionsOrderedByChromosomeThenWindow)
{
    auto w = test::makeSmallWorkload(6, 200, 40'000, 2);
    Partitioner p(10'000);
    auto parts = p.partitionReads(w.reads.reads);
    for (size_t i = 1; i < parts.size(); ++i) {
        bool ordered = parts[i - 1].chr < parts[i].chr ||
            (parts[i - 1].chr == parts[i].chr &&
             parts[i - 1].windowStart < parts[i].windowStart);
        EXPECT_TRUE(ordered);
    }
}

TEST(Partitioner, ByGroupSplitsReadGroups)
{
    auto w = test::makeSmallWorkload(7, 300, 30'000, 1);
    Partitioner p(10'000);
    auto parts = p.partitionReadsByGroup(w.reads.reads);
    size_t total = 0;
    for (const auto &part : parts) {
        total += part.readIndices.size();
        for (size_t idx : part.readIndices)
            EXPECT_EQ(w.reads.reads[idx].readGroup, part.readGroup);
    }
    EXPECT_EQ(total, w.reads.reads.size());
    // More partitions than the position-only split (4 read groups).
    EXPECT_GT(parts.size(), p.partitionReads(w.reads.reads).size());
}

TEST(Partitioner, RejectsBadConfig)
{
    EXPECT_THROW(Partitioner(0), FatalError);
    EXPECT_THROW(Partitioner(100, -1), FatalError);
}

} // namespace
} // namespace genesis::table

/**
 * @file
 * Tests for the multi-tenant accelerator service: admission control,
 * priority / weighted-fair scheduling, per-tenant accounting, the
 * board column cache, and a threaded soak that must be bit-identical
 * to sequential execution (run under TSan in CI).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "base/logging.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/reducer.h"
#include "service/service.h"

namespace genesis::service {
namespace {

/** Build fn: sum `values` (input cached under `key` when non-empty). */
JobBuild
sumJob(std::string key, std::vector<int64_t> values)
{
    return [key = std::move(key),
            values = std::move(values)](JobContext &ctx) {
        std::vector<uint32_t> lens(values.size(), 1);
        auto *in = ctx.input(key, values, lens, 4);
        auto *out = ctx.output("SUM", 8);
        auto &sim = ctx.sim();
        auto *q = sim.makeQueue("q");
        auto *sum_q = sim.makeQueue("sum");
        sim.make<modules::MemoryReader>("rd", in,
                                        sim.memory().makePort(0), q,
                                        modules::MemoryReaderConfig{});
        modules::ReducerConfig red;
        red.op = modules::ReduceOp::Sum;
        sim.make<modules::Reducer>("red", q, sum_q, red);
        modules::MemoryWriterConfig wr;
        sim.make<modules::MemoryWriter>(
            "wr", out, sim.memory().makePort(0), sum_q, wr);
    };
}

int64_t
hostSum(const std::vector<int64_t> &values)
{
    return std::accumulate(values.begin(), values.end(), int64_t{0});
}

/** Small single-slot service config for deterministic scheduling. */
ServiceConfig
singleSlotConfig()
{
    ServiceConfig cfg;
    cfg.numBoards = 1;
    cfg.slotsPerBoard = 1;
    return cfg;
}

TEST(Service, RunsOneJobEndToEnd)
{
    AcceleratorService service(singleSlotConfig());
    JobRequest req;
    req.tenant = "alice";
    req.build = sumJob("", {5, 6, 7});
    Admission admission = service.submit(std::move(req));
    ASSERT_TRUE(admission.accepted) << admission.reason;

    JobResult result = admission.result.get();
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_EQ(result.outputs.size(), 1u);
    EXPECT_EQ(result.outputs[0].name, "SUM");
    ASSERT_EQ(result.outputs[0].elements.size(), 1u);
    EXPECT_EQ(result.outputs[0].elements[0], 18);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.timing.accelSeconds, 0.0);
    EXPECT_GT(result.dollars, 0.0);
    EXPECT_EQ(result.board, 0);
}

TEST(Service, FailedJobReportsErrorAndServiceSurvives)
{
    AcceleratorService service(singleSlotConfig());
    JobRequest bad;
    bad.build = [](JobContext &ctx) {
        ctx.input("", {1}, {1}, 4); // uploads, then fails
        fatal("broken job build");
    };
    JobResult failed = service.submit(std::move(bad)).result.get();
    EXPECT_FALSE(failed.ok);
    EXPECT_NE(failed.error.find("broken job build"), std::string::npos);

    // The failed job's device footprint was retired; new jobs run.
    JobRequest good;
    good.build = sumJob("", {1, 2, 3});
    JobResult ok = service.submit(std::move(good)).result.get();
    ASSERT_TRUE(ok.ok) << ok.error;
    EXPECT_EQ(ok.outputs[0].elements[0], 6);

    auto usage = service.usage();
    ASSERT_EQ(usage.size(), 1u);
    EXPECT_EQ(usage[0].failed, 1u);
    EXPECT_EQ(usage[0].completed, 1u);
}

TEST(Service, StoppedServiceRejectsSubmissions)
{
    AcceleratorService service(singleSlotConfig());
    service.stop();
    JobRequest req;
    req.build = sumJob("", {1});
    Admission admission = service.submit(std::move(req));
    EXPECT_FALSE(admission.accepted);
    EXPECT_EQ(admission.reason, "service stopped");
    EXPECT_EQ(service.rejectedJobs(), 1u);
}

/** Job whose build blocks until released (to hold the only slot). */
struct Blocker {
    std::atomic<bool> running{false};
    std::atomic<bool> release{false};

    JobBuild
    build()
    {
        return [this](JobContext &ctx) {
            running = true;
            while (!release)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            sumJob("", {1})(ctx);
        };
    }

    void
    waitUntilRunning()
    {
        while (!running)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
};

TEST(Service, FullQueueRejectsWithReason)
{
    ServiceConfig cfg = singleSlotConfig();
    cfg.queueCapacity = 2;
    AcceleratorService service(cfg);

    Blocker blocker;
    JobRequest holder;
    holder.build = blocker.build();
    Admission held = service.submit(std::move(holder));
    ASSERT_TRUE(held.accepted);
    blocker.waitUntilRunning(); // slot busy, queue empty

    for (int i = 0; i < 2; ++i) {
        JobRequest req;
        req.build = sumJob("", {i});
        ASSERT_TRUE(service.submit(std::move(req)).accepted);
    }
    JobRequest overflow;
    overflow.tenant = "bob";
    overflow.build = sumJob("", {9});
    Admission rejected = service.submit(std::move(overflow));
    EXPECT_FALSE(rejected.accepted);
    EXPECT_EQ(rejected.reason, "queue full (capacity 2)");

    blocker.release = true;
    service.drain();
    EXPECT_EQ(service.rejectedJobs(), 1u);
    for (const auto &usage : service.usage()) {
        if (usage.tenant == "bob") {
            EXPECT_EQ(usage.rejected, 1u);
        }
    }
    ASSERT_TRUE(held.result.get().ok);
}

TEST(Service, PriorityJobsDispatchFirst)
{
    ServiceConfig cfg = singleSlotConfig();
    cfg.policy = SchedPolicy::Priority;
    AcceleratorService service(cfg);

    Blocker blocker;
    JobRequest holder;
    holder.build = blocker.build();
    service.submit(std::move(holder));
    blocker.waitUntilRunning();

    std::mutex order_mutex;
    std::vector<int> order;
    auto tagged = [&](int tag) {
        return [&, tag](JobContext &ctx) {
            {
                std::lock_guard<std::mutex> lock(order_mutex);
                order.push_back(tag);
            }
            sumJob("", {tag})(ctx);
        };
    };
    JobRequest low;
    low.priority = 0;
    low.build = tagged(0);
    JobRequest high;
    high.priority = 5;
    high.build = tagged(1);
    service.submit(std::move(low));
    service.submit(std::move(high));

    blocker.release = true;
    service.drain();
    ASSERT_EQ(order.size(), 2u);
    // The high-priority job jumped the earlier low-priority one.
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 0);
}

TEST(Service, WeightedFairSharesTrackTenantWeights)
{
    ServiceConfig cfg = singleSlotConfig();
    cfg.policy = SchedPolicy::WeightedFair;
    AcceleratorService service(cfg);
    service.setTenantWeight("light", 1.0);
    service.setTenantWeight("heavy", 4.0);

    Blocker blocker;
    JobRequest holder;
    holder.build = blocker.build();
    service.submit(std::move(holder));
    blocker.waitUntilRunning();

    std::mutex order_mutex;
    std::vector<std::string> order;
    auto tagged = [&](std::string tenant) {
        JobRequest req;
        req.tenant = tenant;
        req.costHint = 1.0;
        req.build = [&, tenant](JobContext &ctx) {
            {
                std::lock_guard<std::mutex> lock(order_mutex);
                order.push_back(tenant);
            }
            sumJob("", {1})(ctx);
        };
        return req;
    };
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(service.submit(tagged("light")).accepted);
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(service.submit(tagged("heavy")).accepted);

    blocker.release = true;
    service.drain();
    ASSERT_EQ(order.size(), 20u);
    // Start-time fair queueing: in the first 10 dispatches the
    // weight-4 tenant gets 4x the slots of the weight-1 tenant.
    size_t heavy_in_first_10 = 0;
    for (size_t i = 0; i < 10; ++i)
        heavy_in_first_10 += order[i] == "heavy";
    EXPECT_EQ(heavy_in_first_10, 8u);
}

TEST(Service, CacheWarmReuseSkipsDma)
{
    ServiceConfig cfg = singleSlotConfig();
    AcceleratorService service(cfg);
    std::vector<int64_t> data(512);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<int64_t>(i) - 250;

    JobRequest cold;
    cold.build = sumJob("tbl.VALS", data);
    JobResult cold_result = service.submit(std::move(cold)).result.get();
    ASSERT_TRUE(cold_result.ok) << cold_result.error;
    EXPECT_EQ(cold_result.cacheMisses, 1u);
    EXPECT_GT(cold_result.timing.dmaSeconds, 0.0);

    JobRequest warm;
    warm.build = sumJob("tbl.VALS", data);
    JobResult warm_result = service.submit(std::move(warm)).result.get();
    ASSERT_TRUE(warm_result.ok) << warm_result.error;
    EXPECT_EQ(warm_result.cacheHits, 1u);
    // Warm job's only DMA is the output flush-back; the input DMA-in
    // (the dominant transfer) is gone.
    EXPECT_LT(warm_result.timing.dmaSeconds,
              cold_result.timing.dmaSeconds);
    // Bit-identical results on hit vs miss.
    ASSERT_EQ(warm_result.outputs.size(), cold_result.outputs.size());
    EXPECT_EQ(warm_result.outputs[0].elements,
              cold_result.outputs[0].elements);
    EXPECT_EQ(warm_result.outputs[0].elements[0], hostSum(data));
}

TEST(Service, MultiTenantSoakMatchesSequentialGolden)
{
    // Many client threads x tenants x rounds against a 2-board fleet;
    // every job's output must equal the host-computed golden sum, and
    // the ledgers must balance. Runs under TSan in CI.
    ServiceConfig cfg;
    cfg.numBoards = 2;
    cfg.slotsPerBoard = 2;
    cfg.queueCapacity = 256;
    AcceleratorService service(cfg);

    constexpr int kClients = 4;
    constexpr int kJobsPerClient = 8;
    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int j = 0; j < kJobsPerClient; ++j) {
                std::vector<int64_t> data(64);
                for (size_t i = 0; i < data.size(); ++i)
                    data[i] = c * 1000 + j * 37 +
                        static_cast<int64_t>(i) - 32;
                // Half the jobs share cached chunks, half upload.
                std::string key = j % 2 == 0
                    ? "chunk" + std::to_string(j / 2)
                    : "";
                JobRequest req;
                req.tenant = "tenant" + std::to_string(c);
                req.costHint = static_cast<double>(data.size());
                // Cached chunks must carry chunk-determined data (the
                // keying contract); keyless jobs use private data.
                std::vector<int64_t> payload = key.empty()
                    ? data
                    : std::vector<int64_t>(64, j / 2 + 1);
                req.build = sumJob(key, payload);
                Admission admission = service.submit(std::move(req));
                ASSERT_TRUE(admission.accepted) << admission.reason;
                JobResult result = admission.result.get();
                if (!result.ok) {
                    ++failures;
                    continue;
                }
                if (result.outputs[0].elements[0] != hostSum(payload))
                    ++mismatches;
            }
        });
    }
    for (auto &t : clients)
        t.join();
    service.drain();

    EXPECT_EQ(failures, 0);
    EXPECT_EQ(mismatches, 0);
    auto cache = service.cacheStats();
    EXPECT_GT(cache.hits, 0u);

    // Per-tenant accounting sums to the fleet total.
    double tenant_accel = 0.0;
    size_t completed = 0;
    for (const auto &usage : service.usage()) {
        tenant_accel += usage.accelSeconds;
        completed += usage.completed;
    }
    EXPECT_EQ(completed,
              static_cast<size_t>(kClients) * kJobsPerClient);
    EXPECT_NEAR(tenant_accel, service.fleetAccelSeconds(),
                1e-12 + 1e-9 * service.fleetAccelSeconds());
    EXPECT_GT(service.fleetDollars(), 0.0);
}

TEST(ServiceConfigEnv, OverridesApply)
{
    setenv("GENESIS_SERVICE_BOARDS", "3", 1);
    setenv("GENESIS_SERVICE_SLOTS", "5", 1);
    setenv("GENESIS_SERVICE_QUEUE_CAP", "9", 1);
    setenv("GENESIS_SERVICE_CACHE_MB", "128", 1);
    ServiceConfig cfg = ServiceConfig::fromEnv();
    unsetenv("GENESIS_SERVICE_BOARDS");
    unsetenv("GENESIS_SERVICE_SLOTS");
    unsetenv("GENESIS_SERVICE_QUEUE_CAP");
    unsetenv("GENESIS_SERVICE_CACHE_MB");
    EXPECT_EQ(cfg.numBoards, 3);
    EXPECT_EQ(cfg.slotsPerBoard, 5);
    EXPECT_EQ(cfg.queueCapacity, 9u);
    EXPECT_EQ(cfg.cacheCapacityBytes, 128ull << 20);
    EXPECT_TRUE(cfg.enableCache);
}

TEST(ServiceConfigEnv, MalformedValuesFallBackLoudlyNotSilently)
{
    // GENESIS_SERVICE_BOARDS=4x used to parse as 4 via atoll; it now
    // warns and keeps the default. Zero boards is likewise rejected
    // (the knob's minimum is 1), not honored into an unusable fleet.
    setQuiet(true);
    ServiceConfig defaults;
    setenv("GENESIS_SERVICE_BOARDS", "4x", 1);
    setenv("GENESIS_SERVICE_SLOTS", "abc", 1);
    setenv("GENESIS_SERVICE_QUEUE_CAP", "0", 1);
    ServiceConfig cfg = ServiceConfig::fromEnv();
    unsetenv("GENESIS_SERVICE_BOARDS");
    unsetenv("GENESIS_SERVICE_SLOTS");
    unsetenv("GENESIS_SERVICE_QUEUE_CAP");
    setQuiet(false);
    EXPECT_EQ(cfg.numBoards, defaults.numBoards);
    EXPECT_EQ(cfg.slotsPerBoard, defaults.slotsPerBoard);
    EXPECT_EQ(cfg.queueCapacity, defaults.queueCapacity);
}

} // namespace
} // namespace genesis::service

/**
 * @file
 * Tests for the cost model (Tables II/III arithmetic) and the FPGA
 * resource model (Table IV), including checks that the modelled numbers
 * for the three paper accelerators land near the published ones.
 */

#include <gtest/gtest.h>

#include "base/logging.h"
#include "core/bqsr_accel.h"
#include "core/markdup_accel.h"
#include "core/metadata_accel.h"
#include "cost/cost.h"
#include "pipeline/resource_model.h"

namespace genesis {
namespace {

TEST(Cost, InstanceSpecsMatchTableII)
{
    auto f1 = cost::InstanceSpec::f1_2xlarge();
    EXPECT_DOUBLE_EQ(f1.dollarsPerHour, 1.65);
    EXPECT_EQ(f1.cores, 4);
    auto r5 = cost::InstanceSpec::r5_4xlarge();
    EXPECT_DOUBLE_EQ(r5.dollarsPerHour, 1.29); // compute + SSD volume
    EXPECT_EQ(r5.cores, 8);
    EXPECT_NE(f1.str().find("f1.2xlarge"), std::string::npos);
}

TEST(Cost, RunCostIsLinear)
{
    auto f1 = cost::InstanceSpec::f1_2xlarge();
    EXPECT_DOUBLE_EQ(cost::runCost(3600, f1), 1.65);
    EXPECT_DOUBLE_EQ(cost::runCost(1800, f1), 0.825);
    EXPECT_THROW(cost::runCost(-1, f1), FatalError);
}

TEST(Cost, TableIIIArithmeticReproduced)
{
    // The paper's speedups imply its cost reductions and perf/$ exactly.
    auto md = cost::compareCost("Mark Duplicates", 2.08);
    EXPECT_NEAR(md.costReduction, 1.63, 0.01);
    // Note: the paper rounds Mark Duplicates cost reduction to the
    // speedup; our model keeps the price ratio explicit.
    auto mu = cost::compareCost("Metadata Update", 19.25);
    EXPECT_NEAR(mu.costReduction, 15.05, 0.01);
    EXPECT_NEAR(mu.normalizedPerfPerDollar, 289.7, 0.5);
    auto bq = cost::compareCost("BQSR", 12.59);
    EXPECT_NEAR(bq.costReduction, 9.84, 0.01);
    EXPECT_NEAR(bq.normalizedPerfPerDollar, 123.9, 0.2);
}

TEST(Cost, InvalidSpeedupFatal)
{
    EXPECT_THROW(cost::compareCost("x", 0.0), FatalError);
}

TEST(Resources, UnknownKindFatal)
{
    EXPECT_THROW(pipeline::moduleCost("NotAModule"), FatalError);
}

TEST(Resources, EstimateAdds)
{
    pipeline::HardwareCensus census;
    census.moduleCounts["MemoryReader"] = 2;
    census.numPipelines = 1;
    census.queueCount = 3;
    census.spmBits = 8 * 1024;
    auto usage = pipeline::estimateResources(census);
    EXPECT_GT(usage.luts, 2u * pipeline::moduleCost("MemoryReader").luts);
    EXPECT_GT(usage.bramMiB, 0.0);
}

/**
 * Table IV reproduction: the modelled usage of each accelerator at its
 * paper pipeline count must land within 25% of the published
 * place-and-route numbers (it is a first-order model, not a P&R tool).
 */
struct TableIvCase {
    const char *name;
    double paperLutsK;
    double paperRegsK;
    double paperBramMiB;
    pipeline::HardwareCensus census;
};

class TableIv : public ::testing::TestWithParam<int>
{
};

TEST(TableIvModel, AllThreeAcceleratorsWithinTolerance)
{
    std::vector<TableIvCase> cases;
    cases.push_back({"MarkDuplicates", 228, 272, 0.34,
                     core::MarkDupAccelerator::census(16)});
    cases.push_back({"MetadataUpdate", 333, 424, 4.95,
                     core::MetadataAccelerator::census(16)});
    cases.push_back({"BQSR", 502, 257, 1.69,
                     core::BqsrAccelerator::census(8)});
    for (const auto &c : cases) {
        auto usage = pipeline::estimateResources(c.census);
        double luts_k = static_cast<double>(usage.luts) / 1000.0;
        double regs_k = static_cast<double>(usage.registers) / 1000.0;
        EXPECT_NEAR(luts_k, c.paperLutsK, c.paperLutsK * 0.25)
            << c.name << " LUTs";
        EXPECT_NEAR(regs_k, c.paperRegsK, c.paperRegsK * 0.25)
            << c.name << " registers";
        EXPECT_NEAR(usage.bramMiB, c.paperBramMiB,
                    c.paperBramMiB * 0.30)
            << c.name << " BRAM";
        // The paper's headline: accelerators under-utilise the FPGA.
        EXPECT_LT(usage.lutUtilization(), 70.0) << c.name;
        EXPECT_LT(usage.bramUtilization(), 70.0) << c.name;
    }
}

TEST(Resources, ReportRenders)
{
    auto usage = pipeline::estimateResources(
        core::MarkDupAccelerator::census(16));
    std::string text = usage.str("Mark Duplicates");
    EXPECT_NE(text.find("CLB Lookup Tables"), std::string::npos);
    EXPECT_NE(text.find("BRAMs"), std::string::npos);
}

TEST(Resources, SmallConfigReportDoesNotRoundToZero)
{
    // A sweep-sized configuration (a few hundred LUTs) used to
    // integer-divide to "0K / 895K"; the report must render the
    // fractional kilo-count instead.
    pipeline::ResourceUsage usage;
    usage.luts = 400;
    usage.registers = 650;
    usage.bramMiB = 0.01;
    std::string text = usage.str("tiny");
    EXPECT_EQ(text.find("0K /"), std::string::npos) << text;
    EXPECT_NE(text.find("0.4K"), std::string::npos) << text;
    EXPECT_NE(text.find("0.7K"), std::string::npos) << text; // 650 rounds
}

TEST(Cost, BoardDollarsPerHourPricesTheKnobs)
{
    // Baseline: the paper's F1 board (4 channels, PCIe 3).
    EXPECT_DOUBLE_EQ(cost::boardDollarsPerHour(4, false, false), 1.65);
    // Fewer channels than the baseline still price at the anchor.
    EXPECT_DOUBLE_EQ(cost::boardDollarsPerHour(1, false, false), 1.65);
    // Each channel beyond four adds board cost.
    EXPECT_DOUBLE_EQ(cost::boardDollarsPerHour(8, false, false),
                     1.65 + 4 * 0.08);
    // PCIe 4 and near-bank stacks are premium parts.
    EXPECT_DOUBLE_EQ(cost::boardDollarsPerHour(4, true, false), 1.80);
    EXPECT_DOUBLE_EQ(cost::boardDollarsPerHour(16, true, true),
                     1.65 + 12 * 0.08 + 0.15 + 0.40);
    EXPECT_THROW(cost::boardDollarsPerHour(0, false, false), FatalError);
}

} // namespace
} // namespace genesis

/**
 * @file
 * Unit tests for table statistics, the plan cost model, and the
 * cost-driven decisions they feed: cardinality estimates are monotone
 * in predicate selectivity, hash joins build on the smaller side,
 * statistics survive CREATE TABLE AS, and the pipeline mapper orders a
 * two-predicate filter chain cheapest-first ahead of the SPM stage.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/accel_common.h"
#include "engine/executor.h"
#include "pipeline/mapper.h"
#include "sim_test_utils.h"
#include "sql/cost_model.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "table/stats.h"
#include "table/table.h"

namespace genesis::sql {
namespace {

using table::ColumnStats;
using table::DataType;
using table::Schema;
using table::Table;
using table::TableStats;
using table::Value;

/** Stats provider over an in-memory map fixture. */
class StatsFixture
{
  public:
    TableStats &
    add(const std::string &name, int64_t rows)
    {
        TableStats &ts = stats_[name];
        ts.rowCount = static_cast<size_t>(rows);
        return ts;
    }

    static void
    intColumn(TableStats &ts, const std::string &name, int64_t min,
              int64_t max, size_t distinct)
    {
        ColumnStats cs;
        cs.rowCount = ts.rowCount;
        cs.hasRange = true;
        cs.minValue = min;
        cs.maxValue = max;
        cs.hasDistinct = true;
        cs.distinct = distinct;
        ts.columns[name] = cs;
    }

    StatsProvider
    provider() const
    {
        return [this](const std::string &name) -> const TableStats * {
            auto it = stats_.find(name);
            return it == stats_.end() ? nullptr : &it->second;
        };
    }

  private:
    std::map<std::string, TableStats> stats_;
};

PlanPtr
planQuery(const std::string &text)
{
    Script s = parseScript(text);
    return planSelect(*s.statements[0]->select);
}

TEST(CostModel, SelectivityMonotoneInPredicateRange)
{
    StatsFixture fx;
    StatsFixture::intColumn(fx.add("T", 100), "POS", 0, 99, 100);
    CostModel model(fx.provider());

    double prev = 0.0;
    for (int64_t cut : {10, 50, 90}) {
        PlanPtr plan = planQuery("SELECT * FROM T WHERE POS < " +
                                 std::to_string(cut));
        ASSERT_EQ(plan->kind, PlanKind::Filter);
        double sel =
            model.selectivity(*plan->predicate, *plan->children[0]);
        EXPECT_GT(sel, prev) << "POS < " << cut;
        EXPECT_LE(sel, 1.0);
        prev = sel;
    }
}

TEST(CostModel, EstimateRowsMonotoneInSelectivity)
{
    StatsFixture fx;
    StatsFixture::intColumn(fx.add("T", 1000), "POS", 0, 999, 1000);
    CostModel model(fx.provider());

    double prev = 0.0;
    for (int64_t cut : {100, 500, 900}) {
        PlanPtr plan = planQuery("SELECT * FROM T WHERE POS < " +
                                 std::to_string(cut));
        double rows = model.estimateRows(*plan);
        EXPECT_GT(rows, prev) << "POS < " << cut;
        EXPECT_LE(rows, 1000.0);
        prev = rows;
    }
}

TEST(CostModel, EqualitySharperThanRangeWithStats)
{
    StatsFixture fx;
    StatsFixture::intColumn(fx.add("T", 1000), "K", 0, 999, 1000);
    CostModel model(fx.provider());

    PlanPtr eq = planQuery("SELECT * FROM T WHERE K == 5");
    PlanPtr ne = planQuery("SELECT * FROM T WHERE K != 5");
    double sel_eq = model.selectivity(*eq->predicate, *eq->children[0]);
    double sel_ne = model.selectivity(*ne->predicate, *ne->children[0]);
    EXPECT_NEAR(sel_eq, 1.0 / 1000.0, 1e-9);
    EXPECT_NEAR(sel_ne, 1.0 - 1.0 / 1000.0, 1e-9);
    // Out-of-range equality can never match.
    PlanPtr oob = planQuery("SELECT * FROM T WHERE K == 5000");
    EXPECT_EQ(model.selectivity(*oob->predicate, *oob->children[0]),
              0.0);
}

TEST(CostModel, HashJoinBuildsOnSmallerSide)
{
    StatsFixture fx;
    StatsFixture::intColumn(fx.add("BIG", 10000), "K", 0, 9999, 10000);
    StatsFixture::intColumn(fx.add("SMALL", 10), "K", 0, 9, 10);

    OptimizerOptions opts;
    opts.ruleMask = kRuleHashJoin;
    opts.stats = fx.provider();

    PlanPtr a = optimizePlan(
        planQuery("SELECT * FROM BIG b INNER JOIN SMALL s "
                  "ON b.K = s.K"),
        opts);
    ASSERT_EQ(a->kind, PlanKind::Join);
    EXPECT_EQ(a->joinStrategy, JoinStrategy::Hash);
    EXPECT_FALSE(a->buildLeft) << "right side (SMALL) is the build side";

    PlanPtr b = optimizePlan(
        planQuery("SELECT * FROM SMALL s INNER JOIN BIG b "
                  "ON s.K = b.K"),
        opts);
    ASSERT_EQ(b->kind, PlanKind::Join);
    EXPECT_EQ(b->joinStrategy, JoinStrategy::Hash);
    EXPECT_TRUE(b->buildLeft) << "left side (SMALL) is the build side";
}

TEST(CostModel, CollectTableStatsBasics)
{
    Schema s;
    s.addField("A", DataType::Int64);
    Table t("T", s);
    for (int64_t i = 0; i < 10; ++i)
        t.appendRow({Value(i % 5)});
    t.appendRow({Value()});

    TableStats ts = table::collectTableStats(t);
    EXPECT_EQ(ts.rowCount, 11u);
    const ColumnStats *cs = ts.column("A");
    ASSERT_NE(cs, nullptr);
    EXPECT_EQ(cs->nullCount, 1u);
    ASSERT_TRUE(cs->hasRange);
    EXPECT_EQ(cs->minValue, 0);
    EXPECT_EQ(cs->maxValue, 4);
    ASSERT_TRUE(cs->hasDistinct);
    EXPECT_EQ(cs->distinct, 5u);
}

TEST(CostModel, StatsSurviveCreateTableAs)
{
    engine::Catalog catalog;
    Schema s;
    s.addField("A", DataType::Int64);
    Table t("T", s);
    for (int64_t i = 0; i < 50; ++i)
        t.appendRow({Value(i)});
    catalog.put("T", std::move(t));

    engine::Executor exec(catalog);
    exec.run("CREATE TABLE derived AS SELECT A FROM T WHERE A < 25");

    StatsProvider stats = exec.statsProvider();
    const TableStats *derived = stats("derived");
    ASSERT_NE(derived, nullptr);
    EXPECT_EQ(derived->rowCount, 25u);
    const ColumnStats *cs = derived->column("A");
    ASSERT_NE(cs, nullptr);
    ASSERT_TRUE(cs->hasRange);
    EXPECT_EQ(cs->minValue, 0);
    EXPECT_EQ(cs->maxValue, 24);

    // Replacing the table invalidates the cached stats.
    exec.run("CREATE TABLE derived AS SELECT A FROM T WHERE A < 5");
    const TableStats *replaced = stats("derived");
    ASSERT_NE(replaced, nullptr);
    EXPECT_EQ(replaced->rowCount, 5u);
}

/**
 * The mapper must lower `WHERE CYCLE != 0 AND QUAL >= 10` as two
 * hardware Filters with the cheaper (more selective) QUAL comparison
 * first in the stream: the cost model rates `QUAL >= 10` at the default
 * range selectivity (1/3) and `CYCLE != 0` near 0.9, so the QUAL filter
 * discards flits before the CYCLE filter sees them.
 */
TEST(CostModel, MapperOrdersPredicatesBySelectivity)
{
    auto w = test::makeSmallWorkload(11, 20, 5'000, 1);

    runtime::AcceleratorSession session{runtime::RuntimeConfig{}};
    pipeline::PipelineBuilder builder(session.sim(), 0);

    core::ReadColumns cols = core::ReadColumns::fromRange(
        w.reads.reads, 0, w.reads.reads.size());
    pipeline::QueryBinding binding;
    binding.pos = session.configureMem(
        "READS.POS", std::move(cols.pos),
        core::ReadColumns::scalarLens(cols.numReads), 4);
    binding.cigar = session.configureMem(
        "READS.CIGAR", std::move(cols.cigar), std::move(cols.cigarLens),
        2);
    binding.seq = session.configureMem(
        "READS.SEQ", std::move(cols.seq), std::move(cols.seqLens), 1);
    binding.qual = session.configureMem(
        "READS.QUAL", std::move(cols.qual), std::move(cols.qualLens),
        1);

    Script script = parseScript(R"(
CREATE TABLE ReadPartition AS
SELECT POS, ENDPOS, CIGAR, SEQ, QUAL
FROM READS PARTITION (@P);
FOR SingleRead IN ReadPartition:
  CREATE TABLE #AlignedRead AS
  ReadExplode (SingleRead.POS, SingleRead.CIGAR, SingleRead.SEQ,
               SingleRead.QUAL)
  FROM SingleRead;
  INSERT INTO Output
  SELECT COUNT(*) FROM #AlignedRead
  WHERE CYCLE != 0 AND QUAL >= 10;
END LOOP;
)");
    PlanPtr plan = pipeline::fuseScriptToPlan(script);
    pipeline::MappedQuery mapped =
        pipeline::mapPlanToPipeline(builder, session, *plan, binding);

    size_t qual_at = mapped.trace.find("Filter <- WHERE (QUAL >= 10)");
    size_t cycle_at = mapped.trace.find("Filter <- WHERE (CYCLE != 0)");
    ASSERT_NE(qual_at, std::string::npos) << mapped.trace;
    ASSERT_NE(cycle_at, std::string::npos) << mapped.trace;
    EXPECT_LT(qual_at, cycle_at)
        << "more selective predicate must filter first:\n"
        << mapped.trace;
}

} // namespace
} // namespace genesis::sql

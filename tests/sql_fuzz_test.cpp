/**
 * @file
 * Property/fuzz tests for the SQL front end.
 *
 * A seeded grammar-directed generator produces well-formed scripts in
 * the Genesis SQL dialect; the parser must accept every one of them,
 * and accepted scripts must round-trip through the planner
 * deterministically (two independent parse+explain passes render the
 * identical plan). Mutated scripts — token swaps, byte edits,
 * truncations — must either parse or fail with FatalError, never with
 * PanicError or an unhandled crash.
 */

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "base/logging.h"
#include "base/rng.h"
#include "engine/executor.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "table/table.h"

namespace genesis::sql {
namespace {

/** Grammar-directed generator of well-formed Genesis SQL scripts. */
class QueryGen
{
  public:
    explicit QueryGen(uint64_t seed) : rng_(seed) {}

    std::string
    script()
    {
        std::string out;
        int n = 1 + static_cast<int>(rng_.below(4));
        for (int i = 0; i < n; ++i) {
            out += statement();
            out += ";\n";
        }
        return out;
    }

  private:
    template <size_t N>
    const char *
    pick(const char *const (&options)[N])
    {
        return options[rng_.below(N)];
    }

    const char *
    table()
    {
        static const char *const kTables[] = {"t", "u", "reads", "tmp1"};
        return pick(kTables);
    }

    const char *
    column()
    {
        static const char *const kCols[] = {"a", "b", "k", "pos",
                                            "qual"};
        return pick(kCols);
    }

    std::string
    valueExpr(int depth)
    {
        switch (rng_.below(depth > 2 ? 4u : 6u)) {
          case 0:
            return std::to_string(rng_.below(1000));
          case 1:
            return column();
          case 2:
            return std::string(table()) + "." + column();
          case 3:
            return "@x";
          case 4: {
            static const char *const kOps[] = {"+", "-", "*"};
            return valueExpr(depth + 1) + " " + pick(kOps) + " " +
                valueExpr(depth + 1);
          }
          default:
            return "(" + valueExpr(depth + 1) + ")";
        }
    }

    std::string
    boolExpr()
    {
        static const char *const kCmp[] = {"==", "!=", "<",
                                           ">",  "<=", ">="};
        return valueExpr(1) + " " + pick(kCmp) + " " + valueExpr(1);
    }

    std::string
    selectStmt()
    {
        std::string s = "SELECT ";
        switch (rng_.below(3u)) {
          case 0:
            s += "*";
            break;
          case 1: {
            int items = 1 + static_cast<int>(rng_.below(3));
            for (int i = 0; i < items; ++i) {
                if (i)
                    s += ", ";
                s += valueExpr(1);
                if (rng_.below(2u))
                    s += std::string(" AS c") + std::to_string(i);
            }
            break;
          }
          default:
            static const char *const kAggs[] = {"SUM", "MIN", "MAX"};
            s += std::string(pick(kAggs)) + "(" + valueExpr(1) +
                ") AS agg0";
            if (rng_.below(2u))
                s += ", COUNT(*) AS n";
            break;
        }
        const char *from = table();
        s += std::string(" FROM ") + from;
        if (rng_.below(4u) == 0)
            s += " PARTITION (@P)";
        if (rng_.below(3u) == 0) {
            static const char *const kJoin[] = {"INNER JOIN",
                                                "LEFT JOIN"};
            const char *other = table();
            s += std::string(" ") + pick(kJoin) + " " + other + " ON " +
                from + "." + column() + " = " + other + "." + column();
        }
        if (rng_.below(2u))
            s += " WHERE " + boolExpr();
        if (rng_.below(3u) == 0)
            s += std::string(" GROUP BY ") + column();
        if (rng_.below(3u) == 0) {
            s += " LIMIT " + std::to_string(rng_.below(100));
            if (rng_.below(2u))
                s += ", " + std::to_string(rng_.below(100));
        }
        return s;
    }

    std::string
    statement()
    {
        switch (rng_.below(8u)) {
          case 0:
            return "DECLARE @x int";
          case 1:
            return "SET @x = " + valueExpr(1);
          case 2:
            return "CREATE TABLE ct" + std::to_string(rng_.below(10)) +
                " AS " + selectStmt();
          case 3:
            return std::string("FOR Row IN ") + table() +
                ":\n    INSERT INTO outt " + selectStmt() +
                ";\nEND LOOP";
          case 4:
            return std::string("EXEC MDGen Input1 = ") + table() +
                " INTO mdout";
          case 5:
            return "CREATE TABLE pe" + std::to_string(rng_.below(10)) +
                " AS PosExplode (t.SEQ, t.POS) FROM t";
          case 6:
            return "CREATE TABLE re" + std::to_string(rng_.below(10)) +
                " AS ReadExplode (x.POS, x.CIGAR, x.SEQ, x.QUAL)"
                " FROM x";
          default:
            return selectStmt();
        }
    }

    Rng rng_;
};

/** Apply one seeded mutation to a script. */
std::string
mutate(const std::string &base, Rng &rng)
{
    std::string s = base;
    if (s.empty())
        return s;
    switch (rng.below(6u)) {
      case 0: // delete a character
        s.erase(rng.below(s.size()), 1);
        break;
      case 1: // duplicate a character
        s.insert(rng.below(s.size()), 1, s[rng.below(s.size())]);
        break;
      case 2: // replace with printable noise
        s[rng.below(s.size())] =
            static_cast<char>(32 + rng.below(95));
        break;
      case 3: // truncate
        s.resize(rng.below(s.size()));
        break;
      case 4: { // insert a random keyword mid-string
        static const char *const kWords[] = {
            " SELECT ", " FROM ",  " WHERE ", " JOIN ",  " GROUP ",
            " LIMIT ",  " (",      ") ",      " , ",     " ; ",
            " @ ",      " END ",   " LOOP ",  " EXEC ",  " 'q' "};
        s.insert(rng.below(s.size()),
                 kWords[rng.below(std::size(kWords))]);
        break;
      }
      default: { // swap two whitespace-separated tokens
        std::vector<std::string> tokens;
        std::string word;
        for (char c : s) {
            if (c == ' ' || c == '\n') {
                if (!word.empty())
                    tokens.push_back(word);
                word.clear();
            } else {
                word.push_back(c);
            }
        }
        if (!word.empty())
            tokens.push_back(word);
        if (tokens.size() >= 2) {
            std::swap(tokens[rng.below(tokens.size())],
                      tokens[rng.below(tokens.size())]);
            s.clear();
            for (const auto &t : tokens)
                s += t + " ";
        }
        break;
      }
    }
    return s;
}

/** parse + explain, classifying the outcome. */
enum class Outcome { Accepted, Rejected, Crashed };

Outcome
tryParse(const std::string &text, std::string *explain_out = nullptr)
{
    try {
        Script script = parseScript(text);
        std::string explain = explainScript(script);
        validateScript(script); // must not crash either
        if (explain_out)
            *explain_out = explain;
        return Outcome::Accepted;
    } catch (const FatalError &) {
        return Outcome::Rejected;
    } catch (...) {
        return Outcome::Crashed;
    }
}

TEST(SqlFuzz, GeneratedScriptsAlwaysParse)
{
    QueryGen gen(4242);
    for (int trial = 0; trial < 400; ++trial) {
        std::string text = gen.script();
        std::string explain;
        Outcome outcome = tryParse(text, &explain);
        ASSERT_EQ(outcome, Outcome::Accepted)
            << "well-formed script rejected or crashed (trial " << trial
            << "):\n" << text;
        EXPECT_FALSE(explain.empty()) << text;
    }
}

TEST(SqlFuzz, PlannerRoundTripIsDeterministic)
{
    QueryGen gen(98765);
    for (int trial = 0; trial < 200; ++trial) {
        std::string text = gen.script();
        std::string explain1, explain2;
        ASSERT_EQ(tryParse(text, &explain1), Outcome::Accepted) << text;
        ASSERT_EQ(tryParse(text, &explain2), Outcome::Accepted) << text;
        EXPECT_EQ(explain1, explain2)
            << "plan differs between parses of:\n" << text;
    }
}

TEST(SqlFuzz, MutatedScriptsNeverCrashTheParser)
{
    QueryGen gen(1337);
    Rng rng(31415);
    int accepted = 0, rejected = 0;
    for (int trial = 0; trial < 300; ++trial) {
        std::string base = gen.script();
        for (int m = 0; m < 4; ++m) {
            std::string text = mutate(base, rng);
            // Stack a second mutation on every other mutant.
            if (m % 2)
                text = mutate(text, rng);
            std::string explain1;
            Outcome outcome = tryParse(text, &explain1);
            ASSERT_NE(outcome, Outcome::Crashed)
                << "parser crashed (non-FatalError) on:\n" << text;
            if (outcome == Outcome::Accepted) {
                ++accepted;
                // Mutants the parser accepts must still plan
                // deterministically.
                std::string explain2;
                ASSERT_EQ(tryParse(text, &explain2), Outcome::Accepted);
                EXPECT_EQ(explain1, explain2) << text;
            } else {
                ++rejected;
            }
        }
    }
    // The mutation set must actually exercise both paths.
    EXPECT_GT(accepted, 0);
    EXPECT_GT(rejected, 0);
}

/**
 * Catalog every generated script can execute against: the four tables
 * the generator names, all carrying the generator's column pool, plus
 * the SEQ/POS pair PosExplode statements need and a partition 0 so
 * `PARTITION (@P)` scans resolve.
 */
engine::Catalog
makeFuzzCatalog()
{
    engine::Catalog cat;
    static const char *const kTables[] = {"t", "u", "reads", "tmp1"};
    uint64_t seed = 7001;
    for (const char *name : kTables) {
        table::Schema s;
        s.addField("a", table::DataType::Int64);
        s.addField("b", table::DataType::Int64);
        s.addField("k", table::DataType::Int64);
        s.addField("pos", table::DataType::Int64);
        s.addField("qual", table::DataType::Int64);
        bool explodable = std::string(name) == "t";
        if (explodable) {
            s.addField("SEQ", table::DataType::Array8);
            s.addField("POS", table::DataType::Int64);
        }
        table::Table tbl(name, s);
        Rng rng(seed++);
        for (int64_t i = 0; i < 40; ++i) {
            std::vector<table::Value> row = {
                table::Value(static_cast<int64_t>(rng.below(50))),
                table::Value(static_cast<int64_t>(rng.below(1000))),
                table::Value(static_cast<int64_t>(rng.below(8))),
                table::Value(i * 3),
                rng.below(10) == 0
                    ? table::Value()
                    : table::Value(static_cast<int64_t>(rng.below(60))),
            };
            if (explodable) {
                table::Blob seq;
                for (uint64_t j = 0; j < 1 + rng.below(6); ++j)
                    seq.push_back(static_cast<int64_t>(rng.below(4)));
                row.push_back(table::Value(std::move(seq)));
                row.push_back(table::Value(i * 7));
            }
            tbl.appendRow(std::move(row));
        }
        cat.putPartition(name, 0, tbl);
        cat.put(name, std::move(tbl));
    }
    return cat;
}

/** Outcome of executing a script end to end. */
struct ExecOutcome {
    bool fatal = false;
    std::optional<table::Table> result;
};

ExecOutcome
runScriptWith(const std::string &text, engine::ExecConfig cfg)
{
    engine::Catalog cat = makeFuzzCatalog();
    engine::Executor exec(cat, cfg);
    exec.env().variables["x"] = table::Value(7);
    exec.env().variables["P"] = table::Value(0);
    ExecOutcome out;
    try {
        out.result = exec.run(text);
    } catch (const FatalError &) {
        out.fatal = true;
    }
    return out;
}

/**
 * Execution parity under the optimizer: every generated script is run
 * naively (optimizer and vectorization off) and then with each rewrite
 * rule individually disabled — the outcome class (result vs. fatal) and
 * the final result table must match bit for bit, so a misbehaving rule
 * is named by the failing assertion.
 */
TEST(SqlFuzz, RuleMaskedExecutionMatchesNaive)
{
    static constexpr uint32_t kRules[] = {
        kRuleSplit,       kRulePushdown, kRuleTransfer, kRuleJoinReorder,
        kRuleHashJoin,    kRuleMerge,    kRuleFilterOrder,
    };
    QueryGen gen(24601);
    int executed = 0;
    for (int trial = 0; trial < 60; ++trial) {
        std::string text = gen.script();
        engine::ExecConfig naive_cfg;
        naive_cfg.optimize = false;
        naive_cfg.vectorize = false;
        ExecOutcome naive = runScriptWith(text, naive_cfg);
        if (!naive.fatal)
            ++executed;

        for (uint32_t rule : kRules) {
            engine::ExecConfig cfg;
            cfg.optimize = true;
            cfg.vectorize = true;
            cfg.ruleMask = kAllRules & ~rule;
            ExecOutcome got = runScriptWith(text, cfg);
            ASSERT_EQ(naive.fatal, got.fatal)
                << "outcome class diverged with rule '" << ruleName(rule)
                << "' disabled on:\n" << text;
            if (naive.fatal)
                continue;
            ASSERT_EQ(naive.result.has_value(), got.result.has_value())
                << "result presence diverged with rule '"
                << ruleName(rule) << "' disabled on:\n" << text;
            if (naive.result) {
                EXPECT_TRUE(naive.result->contentEquals(*got.result))
                    << "rule '" << ruleName(rule)
                    << "' changed script results:\n" << text;
            }
        }

        // And the full default configuration (all rules, vectorized).
        ExecOutcome full = runScriptWith(text, engine::ExecConfig{});
        ASSERT_EQ(naive.fatal, full.fatal) << text;
        if (!naive.fatal && naive.result) {
            ASSERT_TRUE(full.result.has_value()) << text;
            EXPECT_TRUE(naive.result->contentEquals(*full.result))
                << "default optimize+vectorize changed results:\n"
                << text;
        }
    }
    // The generator must produce a healthy share of runnable scripts.
    EXPECT_GT(executed, 10);
}

} // namespace
} // namespace genesis::sql

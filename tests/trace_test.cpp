/**
 * @file
 * Tests for the cycle-accurate tracing subsystem.
 *
 * Three layers: TraceSink span/counter mechanics in isolation; trace
 * capture wired through a small simulated design (spans, counters,
 * async memory lifetimes, JSON export); and the observer-effect
 * regression — tracing on vs off must give bit-identical cycle counts
 * and statistics, and traces captured with the idle-cycle fast-forward
 * enabled must agree span-for-span with a cycle-by-cycle run.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "base/trace.h"
#include "core/metadata_accel.h"
#include "sim/scheduler.h"
#include "sim_test_utils.h"

namespace genesis {
namespace {

// --- TraceSink mechanics ------------------------------------------------

TEST(TraceSink, MarksCoalesceAndGapsSynthesizeIdle)
{
    TraceSink t;
    int pid = t.beginProcess("p");
    int tr = t.addSpanTrack(pid, "m");
    t.mark(tr, 0, TraceSink::kStateBusy);
    t.mark(tr, 1, TraceSink::kStateBusy);
    t.mark(tr, 2, TraceSink::kStateBusy);
    t.mark(tr, 10, TraceSink::kStateBusy);
    t.finish();
    // busy [0,3), synthesized idle [3,10), busy [10,11).
    ASSERT_EQ(t.spans().size(), 3u);
    EXPECT_EQ(t.stateCycles(tr, TraceSink::kStateBusy), 4u);
    EXPECT_EQ(t.stateCycles(tr, TraceSink::kStateIdle), 7u);
}

TEST(TraceSink, SameCycleRemarkKeepsMostSignificantState)
{
    TraceSink t;
    int pid = t.beginProcess("p");
    int tr = t.addSpanTrack(pid, "m");
    TraceSink::StateId stall = t.internState("stall.mem");

    // Upgrade: stall then busy on the same cycle -> busy wins.
    t.mark(tr, 0, stall);
    t.mark(tr, 0, TraceSink::kStateBusy);
    // Downgrade attempt: busy then stall -> stays busy.
    t.mark(tr, 1, TraceSink::kStateBusy);
    t.mark(tr, 1, stall);
    t.finish();
    EXPECT_EQ(t.stateCycles(tr, TraceSink::kStateBusy), 2u);
    EXPECT_EQ(t.stateCycles(tr, stall), 0u);
}

TEST(TraceSink, SameCycleUpgradeSplitsMultiCycleSpan)
{
    TraceSink t;
    int pid = t.beginProcess("p");
    int tr = t.addSpanTrack(pid, "m");
    TraceSink::StateId stall = t.internState("stall.mem");
    t.mark(tr, 0, stall);
    t.mark(tr, 1, stall);
    t.mark(tr, 1, TraceSink::kStateBusy); // upgrade only cycle 1
    t.finish();
    EXPECT_EQ(t.stateCycles(tr, stall), 1u);
    EXPECT_EQ(t.stateCycles(tr, TraceSink::kStateBusy), 1u);
}

TEST(TraceSink, CreditSkippedExtendsOnlySpansOpenAtTheSample)
{
    TraceSink t;
    int pid = t.beginProcess("p");
    int stale = t.addSpanTrack(pid, "stale");
    int live = t.addSpanTrack(pid, "live");
    t.mark(stale, 0, TraceSink::kStateBusy); // span end = 1
    t.mark(live, 0, TraceSink::kStateBusy);
    t.mark(live, 1, TraceSink::kStateBusy); // span end = 2
    t.creditSkipped(2, 10);                 // only `live` qualifies
    t.finish();
    EXPECT_EQ(t.stateCycles(stale, TraceSink::kStateBusy), 1u);
    EXPECT_EQ(t.stateCycles(live, TraceSink::kStateBusy), 12u);
}

TEST(TraceSink, CounterDedupsAndRateLimits)
{
    TraceSink t;
    t.setCounterInterval(10);
    int pid = t.beginProcess("p");
    int tr = t.addCounterTrack(pid, "q");
    t.counter(tr, 0, 1);  // emitted
    t.counter(tr, 1, 1);  // duplicate value: dropped
    t.counter(tr, 3, 2);  // within interval: held back
    t.counter(tr, 12, 3); // due again: emitted
    t.counter(tr, 14, 4); // held back, flushed by finish()
    size_t before_finish = t.numEvents();
    EXPECT_EQ(before_finish, 2u);
    t.finish();
    EXPECT_EQ(t.numEvents(), 3u);
}

TEST(TraceSink, ProcessNamesDeduplicate)
{
    TraceSink t;
    t.beginProcess("batch");
    t.beginProcess("batch");
    t.beginProcess("batch");
    EXPECT_EQ(t.numProcesses(), 3u);
}

TEST(TraceSink, AdoptMergesRemapsAndResetsChild)
{
    TraceSink parent;
    int ppid = parent.beginProcess("main");
    int ptrack = parent.addSpanTrack(ppid, "m");
    parent.mark(ptrack, 0, TraceSink::kStateBusy);

    TraceSink child;
    int cpid = child.beginProcess("shard");
    int ctrack = child.addSpanTrack(cpid, "w");
    TraceSink::StateId stall = child.internState("stall.mem");
    child.mark(ctrack, 0, TraceSink::kStateBusy);
    child.mark(ctrack, 1, stall);
    int ccounter = child.addCounterTrack(cpid, "q");
    child.counter(ccounter, 0, 7);
    int casync = child.addAsyncTrack(cpid, "mem");
    uint64_t id = child.newAsyncId();
    child.asyncBegin(casync, id, 0, stall);
    child.asyncEnd(casync, id, 2, stall);

    parent.adopt(child);
    parent.finish();

    EXPECT_EQ(parent.numProcesses(), 2u);
    // The child's recordings are reachable under remapped track/state
    // ids, reading as if recorded into the parent directly.
    std::map<std::string, uint64_t> totals;
    for (const auto &span : parent.spans()) {
        totals[parent.trackProcess(span.track) + "/" +
               parent.trackName(span.track) + "/" +
               parent.stateName(span.state)] += span.end - span.begin;
    }
    EXPECT_EQ(totals.at("main/m/busy"), 1u);
    EXPECT_EQ(totals.at("shard/w/busy"), 1u);
    EXPECT_EQ(totals.at("shard/w/stall.mem"), 1u);
    EXPECT_GE(parent.numEvents(), 3u); // counter + async begin/end

    // The child came back empty and reusable.
    EXPECT_EQ(child.numProcesses(), 0u);
    EXPECT_TRUE(child.spans().empty());
    EXPECT_EQ(child.numEvents(), 0u);
}

TEST(TraceSink, AdoptDeduplicatesRepeatedProcessNames)
{
    TraceSink parent;
    for (int round = 0; round < 3; ++round) {
        TraceSink child;
        int pid = child.beginProcess("pipeline0");
        int track = child.addSpanTrack(pid, "m");
        child.mark(track, 0, TraceSink::kStateBusy);
        parent.adopt(child);
        // Adopting the now-reset child again must be a harmless no-op.
        parent.adopt(child);
    }
    parent.finish();
    EXPECT_EQ(parent.numProcesses(), 3u);
    EXPECT_EQ(parent.spans().size(), 3u);
}

TEST(TraceSink, UtilizationSummaryNamesTopStall)
{
    TraceSink t;
    int pid = t.beginProcess("design");
    int tr = t.addSpanTrack(pid, "worker");
    TraceSink::StateId stall = t.internState("stall.backpressure");
    t.mark(tr, 0, TraceSink::kStateBusy);
    for (uint64_t c = 1; c < 9; ++c)
        t.mark(tr, c, stall);
    t.mark(tr, 9, TraceSink::kStateBusy);
    t.finish();
    std::string summary = t.utilizationSummary();
    EXPECT_NE(summary.find("design"), std::string::npos);
    EXPECT_NE(summary.find("worker"), std::string::npos);
    EXPECT_NE(summary.find("stall.backpressure"), std::string::npos);
}

// --- capture through a simulated design ---------------------------------

/** Forwards flits, issuing a memory read for each and waiting on it. */
class TracedWorker final : public sim::Module
{
  public:
    TracedWorker(std::string name, sim::MemoryPort *port,
                 sim::HardwareQueue *in, sim::HardwareQueue *out)
        : Module(std::move(name)), port_(port), in_(in), out_(out)
    {
    }

    void
    tick() override
    {
        if (closed_)
            return;
        if (waiting_) {
            if (port_->takeCompletedReadBytes() == 0) {
                countStall(stallMemory_);
                return;
            }
            waiting_ = false;
            noteProgress();
        }
        if (!in_->canPop()) {
            if (in_->drained() && port_->idle()) {
                out_->close();
                closed_ = true;
            } else if (!in_->drained()) {
                countStall(stallStarved_);
            }
            return;
        }
        if (!out_->canPush()) {
            countStall(stallBackpressure_);
            return;
        }
        sim::Flit flit = in_->pop();
        out_->push(flit);
        countFlit();
        port_->issue(static_cast<uint64_t>(flit.key) * 64, 64, false);
        waiting_ = true;
    }

    bool done() const override { return closed_; }

  private:
    StatHandle stallMemory_ = stallCounter("memory");
    StatHandle stallStarved_ = stallCounter("starved");
    StatHandle stallBackpressure_ = stallCounter("backpressure");
    sim::MemoryPort *port_;
    sim::HardwareQueue *in_;
    sim::HardwareQueue *out_;
    bool waiting_ = false;
    bool closed_ = false;
};

struct SmallRun {
    uint64_t cycles = 0;
    StatRegistry stats;
};

/** Run the memory-bound chain, optionally traced. */
SmallRun
runSmallDesign(TraceSink *trace, int flit_count = 40,
               uint32_t latency = 200)
{
    sim::MemoryConfig mem;
    mem.latencyCycles = latency; // long quiet spans: fast-forwardable
    sim::Simulator simulator(mem);
    if (trace)
        simulator.attachTrace(trace, "small");
    auto *a = simulator.makeQueue("a", 4);
    auto *b = simulator.makeQueue("b", 4);
    auto *port = simulator.memory().makePort(0);
    std::vector<sim::Flit> flits;
    for (int i = 0; i < flit_count; ++i)
        flits.push_back(sim::makeFlit(i));
    simulator.make<test::VectorSource>("src", a, std::move(flits));
    simulator.make<TracedWorker>("worker", port, a, b);
    simulator.make<test::VectorSink>("sink", b);
    SmallRun r;
    r.cycles = simulator.run();
    r.stats = simulator.collectStats();
    return r;
}

/** Per-(track,state) cycle totals, keyed by name for comparability. */
std::map<std::string, uint64_t>
spanTotals(const TraceSink &t)
{
    std::map<std::string, uint64_t> totals;
    for (const auto &span : t.spans()) {
        totals[t.trackName(span.track) + "/" +
               t.stateName(span.state)] += span.end - span.begin;
    }
    return totals;
}

TEST(TraceCapture, SpansCountersAndAsyncEventsRecorded)
{
    TraceSink trace;
    SmallRun r = runSmallDesign(&trace);
    trace.finish();

    EXPECT_GT(r.cycles, 0u);
    EXPECT_FALSE(trace.spans().empty());
    EXPECT_GT(trace.numEvents(), 0u);

    auto totals = spanTotals(trace);
    // The worker processed every flit (busy) and waited on memory; the
    // stall-reason state carries the interned counter name.
    EXPECT_GE(totals.at("worker/busy"), 40u);
    EXPECT_GT(totals.at("worker/stall.memory"), 0u);

    // Async lifetimes: one begin and one end per memory request.
    std::ostringstream os;
    trace.writeJson(os);
    std::string json = os.str();
    auto count_of = [&json](const std::string &needle) {
        size_t n = 0;
        for (size_t at = json.find(needle); at != std::string::npos;
             at = json.find(needle, at + needle.size())) {
            ++n;
        }
        return n;
    };
    EXPECT_EQ(count_of("\"ph\":\"b\""), 40u);
    EXPECT_EQ(count_of("\"ph\":\"e\""), 40u);
    EXPECT_EQ(count_of("\"ph\":\"n\""), 40u);
    EXPECT_GT(count_of("\"ph\":\"X\""), 0u);
    EXPECT_GT(count_of("\"ph\":\"C\""), 0u);
    EXPECT_GT(count_of("process_name"), 0u);
}

TEST(TraceCapture, WriteJsonFileProducesLoadableSkeleton)
{
    TraceSink trace;
    runSmallDesign(&trace, 10);
    trace.finish();
    std::string path = ::testing::TempDir() + "genesis_trace_test.json";
    ASSERT_TRUE(trace.writeJsonFile(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string json = buf.str();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    ASSERT_GE(json.size(), 4u);
    EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
    std::remove(path.c_str());
}

// --- observer effect ----------------------------------------------------

TEST(TraceObserver, TracingDoesNotChangeCyclesOrStats)
{
    SmallRun off = runSmallDesign(nullptr);
    TraceSink trace;
    SmallRun on = runSmallDesign(&trace);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.stats.counters(), on.stats.counters());
}

TEST(TraceObserver, AcceleratorRunBitIdenticalWithTracing)
{
    auto w = test::makeSmallWorkload(11, 150, 30'000, 1);

    core::MetadataAccelConfig cfg;
    cfg.numPipelines = 2;
    cfg.psize = 8'192;
    auto hw_off = w.reads.reads;
    auto off = core::MetadataAccelerator(cfg).run(hw_off, w.genome);

    TraceSink trace;
    core::MetadataAccelConfig traced_cfg = cfg;
    traced_cfg.runtime.trace = &trace;
    traced_cfg.runtime.traceLabel = "metadata";
    auto hw_on = w.reads.reads;
    auto on = core::MetadataAccelerator(traced_cfg).run(hw_on, w.genome);
    trace.finish();

    // Simulated time and every statistic must be bit-identical; the
    // tagged reads must agree byte-for-byte.
    EXPECT_EQ(off.info.totalCycles, on.info.totalCycles);
    EXPECT_EQ(off.info.stats.counters(), on.info.stats.counters());
    ASSERT_EQ(hw_off.size(), hw_on.size());
    for (size_t i = 0; i < hw_off.size(); ++i) {
        EXPECT_EQ(hw_off[i].nmTag, hw_on[i].nmTag);
        EXPECT_EQ(hw_off[i].mdTag, hw_on[i].mdTag);
        EXPECT_EQ(hw_off[i].uqTag, hw_on[i].uqTag);
    }
    // And the trace actually captured the batches.
    EXPECT_GT(trace.numProcesses(), 0u);
    EXPECT_FALSE(trace.spans().empty());
}

// --- fast-forward composition -------------------------------------------

TEST(TraceCompose, FastForwardTraceMatchesCycleByCycleTrace)
{
    // Capture the same design twice: once with the idle-cycle
    // fast-forward active, once cycle-by-cycle via the escape hatch.
    // Every (track, state) cycle total must agree exactly — skipped
    // spans are credited, not lost.
    TraceSink ff_trace;
    SmallRun ff = runSmallDesign(&ff_trace, 40, 400);
    ff_trace.finish();

    ::setenv("GENESIS_SIM_NO_FASTFORWARD", "1", 1);
    TraceSink slow_trace;
    SmallRun slow = runSmallDesign(&slow_trace, 40, 400);
    ::unsetenv("GENESIS_SIM_NO_FASTFORWARD");
    slow_trace.finish();

    EXPECT_EQ(ff.cycles, slow.cycles);
    EXPECT_EQ(ff.stats.counters(), slow.stats.counters());
    EXPECT_EQ(spanTotals(ff_trace), spanTotals(slow_trace));
    // The memory-bound design spends most of its time waiting, so the
    // fast-forward must have found long stall spans to credit.
    auto totals = spanTotals(ff_trace);
    EXPECT_GT(totals.at("worker/stall.memory"), ff.cycles / 2);
}

} // namespace
} // namespace genesis

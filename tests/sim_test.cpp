/**
 * @file
 * Tests for the dataflow simulator core: flits, two-phase queues,
 * round-robin arbitration, the memory timing model, scratchpads, and the
 * scheduler (including deadlock detection).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>

#include "base/logging.h"
#include "modules/filter.h"
#include "modules/spm_updater.h"
#include "sim/arbiter.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "sim/spm.h"
#include "sim_test_utils.h"

namespace genesis::sim {
namespace {

TEST(Flit, FieldsAndMerge)
{
    Flit a = makeFlit(5, 1, 2);
    Flit b = makeFlit(5, 3);
    a.mergeFields(b);
    EXPECT_EQ(a.numFields, 3);
    EXPECT_EQ(a.fieldAt(2), 3);
}

TEST(Flit, OverflowPanics)
{
    setQuiet(true);
    Flit f;
    for (int i = 0; i < Flit::kMaxFields; ++i)
        f.pushField(i);
    EXPECT_THROW(f.pushField(99), PanicError);
    EXPECT_THROW(f.fieldAt(Flit::kMaxFields), PanicError);
    setQuiet(false);
}

TEST(Flit, BoundaryMarker)
{
    Flit b = makeBoundary();
    EXPECT_TRUE(isBoundary(b));
    EXPECT_FALSE(isBoundary(makeFlit(1, 2)));
}

TEST(Flit, StrRendersSentinels)
{
    Flit f = makeFlit(Flit::kIns, Flit::kDel);
    f.pushField(Flit::kNull);
    std::string s = f.str();
    EXPECT_NE(s.find("Ins"), std::string::npos);
    EXPECT_NE(s.find("Del"), std::string::npos);
    EXPECT_NE(s.find("Null"), std::string::npos);
}

TEST(Queue, PushVisibleOnlyAfterCommit)
{
    HardwareQueue q("q", 4);
    q.push(makeFlit(1));
    EXPECT_FALSE(q.canPop());
    q.commit();
    ASSERT_TRUE(q.canPop());
    EXPECT_EQ(q.front().key, 1);
}

TEST(Queue, PopFreesSlotOnlyAfterCommit)
{
    HardwareQueue q("q", 1);
    q.push(makeFlit(1));
    q.commit();
    EXPECT_FALSE(q.canPush()); // full
    q.pop();
    EXPECT_FALSE(q.canPush()); // registered backpressure: still full
    q.commit();
    EXPECT_TRUE(q.canPush());
}

TEST(Queue, OnePushPerCyclePanicsOtherwise)
{
    setQuiet(true);
    HardwareQueue q("q", 4);
    q.push(makeFlit(1));
    EXPECT_THROW(q.push(makeFlit(2)), PanicError);
    setQuiet(false);
}

TEST(Queue, CloseAndDrained)
{
    HardwareQueue q("q", 4);
    q.push(makeFlit(1));
    q.commit();
    q.close();
    EXPECT_FALSE(q.closed()); // staged
    q.commit();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.drained()); // flit still inside
    q.pop();
    q.commit();
    EXPECT_TRUE(q.drained());
}

TEST(Queue, PushAfterClosePanics)
{
    setQuiet(true);
    HardwareQueue q("q", 4);
    q.close();
    q.commit();
    EXPECT_THROW(q.push(makeFlit(1)), PanicError);
    setQuiet(false);
}

TEST(Queue, FifoOrderAndStats)
{
    HardwareQueue q("q", 8);
    for (int i = 0; i < 3; ++i) {
        q.push(makeFlit(i));
        q.commit();
    }
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(q.pop().key, i);
        q.commit();
    }
    EXPECT_EQ(q.totalFlits(), 3u);
    EXPECT_EQ(q.maxOccupancy(), 3u);
}

TEST(Arbiter, RoundRobinIsFair)
{
    RoundRobinArbiter arb(3);
    auto all = [](size_t) { return true; };
    EXPECT_EQ(arb.grant(all), 0);
    EXPECT_EQ(arb.grant(all), 1);
    EXPECT_EQ(arb.grant(all), 2);
    EXPECT_EQ(arb.grant(all), 0);
}

TEST(Arbiter, SkipsNonRequesting)
{
    RoundRobinArbiter arb(3);
    auto only2 = [](size_t i) { return i == 2; };
    EXPECT_EQ(arb.grant(only2), 2);
    EXPECT_EQ(arb.grant(only2), 2);
    auto none = [](size_t) { return false; };
    EXPECT_EQ(arb.grant(none), -1);
}

TEST(Memory, ReadCompletesAfterLatency)
{
    MemoryConfig cfg;
    cfg.numChannels = 1;
    cfg.bytesPerCyclePerChannel = 16;
    cfg.latencyCycles = 10;
    MemorySystem mem(cfg);
    MemoryPort *port = mem.makePort(0);
    port->issue(0, 64, false);
    uint64_t total = 0;
    int cycles = 0;
    while (total < 64 && cycles < 100) {
        mem.tick();
        total += port->takeCompletedReadBytes();
        ++cycles;
    }
    EXPECT_EQ(total, 64u);
    // 1 schedule cycle + 10 latency + 4 transfer cycles.
    EXPECT_GE(cycles, 14);
    EXPECT_LE(cycles, 16);
}

TEST(Memory, ChannelBandwidthBoundsThroughput)
{
    MemoryConfig cfg;
    cfg.numChannels = 1;
    cfg.bytesPerCyclePerChannel = 8;
    cfg.latencyCycles = 2;
    MemorySystem mem(cfg);
    MemoryPort *port = mem.makePort(0);

    uint64_t issued = 0, completed = 0;
    const uint64_t goal = 64 * 20;
    uint64_t cycles = 0;
    while (completed < goal && cycles < 10'000) {
        while (issued < goal && port->canIssue()) {
            port->issue(issued, 64, false);
            issued += 64;
        }
        mem.tick();
        completed += port->takeCompletedReadBytes();
        ++cycles;
    }
    ASSERT_EQ(completed, goal);
    // At 8 B/cycle, 1280 bytes need at least 160 cycles; allow slack
    // for latency and the port-queue refill pattern.
    EXPECT_GE(cycles, goal / 8);
    EXPECT_LE(cycles, goal / 8 + 80);
}

TEST(Memory, MultipleChannelsServeInParallel)
{
    // Two ports hitting different channels should roughly double the
    // throughput of one port on one channel.
    auto run_case = [](int nports) {
        MemoryConfig cfg;
        cfg.numChannels = 4;
        cfg.bytesPerCyclePerChannel = 8;
        cfg.latencyCycles = 2;
        MemorySystem mem(cfg);
        std::vector<MemoryPort *> ports;
        for (int p = 0; p < nports; ++p)
            ports.push_back(mem.makePort(p));
        const uint64_t per_port = 64 * 40;
        std::vector<uint64_t> issued(static_cast<size_t>(nports), 0);
        std::vector<uint64_t> done(static_cast<size_t>(nports), 0);
        uint64_t cycles = 0;
        for (;;) {
            bool all_done = true;
            for (int p = 0; p < nports; ++p) {
                auto pi = static_cast<size_t>(p);
                while (issued[pi] < per_port && ports[pi]->canIssue()) {
                    // Stride across channels.
                    ports[pi]->issue(issued[pi] * 64 + pi * 64, 64,
                                     false);
                    issued[pi] += 64;
                }
                if (done[pi] < per_port)
                    all_done = false;
            }
            if (all_done || cycles > 100'000)
                break;
            mem.tick();
            for (int p = 0; p < nports; ++p) {
                done[static_cast<size_t>(p)] +=
                    ports[static_cast<size_t>(p)]
                        ->takeCompletedReadBytes();
            }
            ++cycles;
        }
        return cycles;
    };
    uint64_t one = run_case(1);
    uint64_t four = run_case(4);
    // 4 ports move 4x the data; with 4 channels it should take well
    // under 4x the time of the single-port case.
    EXPECT_LT(four, one * 3);
}

TEST(Memory, WritesRetire)
{
    MemorySystem mem{MemoryConfig{}};
    MemoryPort *port = mem.makePort(0);
    port->issue(128, 64, true);
    for (int i = 0; i < 100 && !port->idle(); ++i)
        mem.tick();
    EXPECT_TRUE(port->idle());
    EXPECT_EQ(port->retiredWriteBytes(), 64u);
}

TEST(Memory, PortQueueDepthEnforced)
{
    setQuiet(true);
    MemoryConfig cfg;
    cfg.portQueueDepth = 2;
    MemorySystem mem(cfg);
    MemoryPort *port = mem.makePort(0);
    port->issue(0, 64, false);
    port->issue(64, 64, false);
    EXPECT_FALSE(port->canIssue());
    EXPECT_THROW(port->issue(128, 64, false), PanicError);
    setQuiet(false);
}

TEST(Scratchpad, ReadWriteClear)
{
    Scratchpad spm("s", 16, 4);
    spm.write(3, 42);
    EXPECT_EQ(spm.read(3), 42);
    EXPECT_EQ(spm.sizeBytes(), 64u);
    spm.clear();
    EXPECT_EQ(spm.read(3), 0);
}

TEST(Scratchpad, OutOfRangePanics)
{
    setQuiet(true);
    Scratchpad spm("s", 4);
    EXPECT_THROW(spm.read(4), PanicError);
    EXPECT_THROW(spm.write(4, 1), PanicError);
    setQuiet(false);
}

TEST(Simulator, SourceToSinkDelivery)
{
    Simulator sim;
    auto *q = sim.makeQueue("q");
    std::vector<Flit> flits = {makeFlit(1, 10), makeFlit(2, 20),
                               makeBoundary(), makeFlit(3, 30)};
    sim.make<test::VectorSource>("src", q, flits);
    auto *sink = sim.make<test::VectorSink>("sink", q);
    sim.run();
    ASSERT_EQ(sink->collected().size(), 4u);
    EXPECT_EQ(sink->collected()[0].key, 1);
    EXPECT_TRUE(isBoundary(sink->collected()[2]));
    EXPECT_EQ(sink->dataFlits().size(), 3u);
}

TEST(Simulator, BackpressureThroughTinyQueue)
{
    Simulator sim;
    auto *q = sim.makeQueue("q", 1);
    std::vector<Flit> flits;
    for (int i = 0; i < 50; ++i)
        flits.push_back(makeFlit(i));
    sim.make<test::VectorSource>("src", q, flits);
    auto *sink = sim.make<test::VectorSink>("sink", q);
    uint64_t cycles = sim.run();
    EXPECT_EQ(sink->collected().size(), 50u);
    // Capacity-1 registered queue sustains at most one flit per two
    // cycles.
    EXPECT_GE(cycles, 100u);
}

TEST(Simulator, DeadlockDetected)
{
    setQuiet(true);
    // A sink waiting on a queue nobody ever closes is a deadlock.
    Simulator sim;
    auto *q = sim.makeQueue("q");
    sim.make<test::VectorSink>("sink", q);
    EXPECT_THROW(sim.run(), PanicError);
    setQuiet(false);
}

// Pops a flit, round-trips it through a memory read, then forwards it.
// With a long memory latency this leaves the design provably idle for
// most cycles — the idle-cycle fast-forward's target pattern.
class EchoThroughMemory final : public Module
{
  public:
    EchoThroughMemory(std::string name, MemoryPort *port,
                      HardwareQueue *in, HardwareQueue *out)
        : Module(std::move(name)), port_(port), in_(in), out_(out)
    {
    }

    void
    tick() override
    {
        if (closed_)
            return;
        if (waiting_) {
            if (port_->takeCompletedReadBytes() == 0) {
                countStall(stallMemory_);
                return;
            }
            noteProgress();
            waiting_ = false;
        }
        if (held_) {
            if (!out_->canPush()) {
                countStall(stallBackpressure_);
                return;
            }
            out_->push(*held_);
            held_.reset();
            countFlit();
            return;
        }
        if (!in_->canPop()) {
            if (in_->drained()) {
                out_->close();
                closed_ = true;
            }
            return;
        }
        held_ = in_->pop();
        port_->issue(static_cast<uint64_t>(held_->key) * 64, 64, false);
        waiting_ = true;
    }

    bool done() const override { return closed_; }

  private:
    StatHandle stallMemory_ = stallCounter("memory");
    StatHandle stallBackpressure_ = stallCounter("backpressure");
    MemoryPort *port_;
    HardwareQueue *in_;
    HardwareQueue *out_;
    std::optional<Flit> held_;
    bool waiting_ = false;
    bool closed_ = false;
};

TEST(Simulator, WedgedDesignPanicsWithinHorizon)
{
    setQuiet(true);
    // A sink waiting on a queue nobody feeds or closes must hit the
    // deadlock horizon (10'000 + 100 * latency = 14'000 at the default
    // latency of 40), not spin to the runaway max_cycles bound.
    Simulator sim;
    auto *q = sim.makeQueue("q");
    sim.make<test::VectorSink>("sink", q);
    try {
        sim.run();
        FAIL() << "expected a deadlock panic";
    } catch (const PanicError &) {
        EXPECT_GE(sim.cycle(), 14'000u);
        EXPECT_LE(sim.cycle(), 15'000u);
    }
    setQuiet(false);
}

TEST(Simulator, LongQuietButLegalDesignCompletes)
{
    // A memory latency far above the base horizon produces legal quiet
    // spans of ~60k cycles; the latency-scaled horizon (and the
    // fast-forward's progress accounting) must not misfire on them.
    MemoryConfig cfg;
    cfg.latencyCycles = 60'000;
    Simulator sim(cfg);
    auto *a = sim.makeQueue("a");
    auto *b = sim.makeQueue("b");
    auto *port = sim.memory().makePort(0);
    sim.make<test::VectorSource>(
        "src", a, std::vector<Flit>{makeFlit(1), makeFlit(2)});
    sim.make<EchoThroughMemory>("echo", port, a, b);
    auto *sink = sim.make<test::VectorSink>("sink", b);
    uint64_t cycles = sim.run();
    EXPECT_EQ(sink->collected().size(), 2u);
    EXPECT_GT(cycles, 120'000u); // two sequential 60k-cycle reads
}

TEST(Simulator, FastForwardMatchesCycleByCycle)
{
    // Same design, fast-forward on vs off: simulated cycle counts and
    // every aggregated statistic must be bit-identical.
    auto run_once = [] {
        MemoryConfig cfg;
        cfg.latencyCycles = 300;
        // Uniform access latency: the sequential addresses would
        // otherwise mostly hit open rows and halve the quiet spans.
        cfg.rowHitLatencyCycles = 300;
        Simulator sim(cfg);
        auto *a = sim.makeQueue("a", 2);
        auto *b = sim.makeQueue("b", 2);
        auto *port = sim.memory().makePort(0);
        std::vector<Flit> flits;
        for (int i = 0; i < 20; ++i)
            flits.push_back(makeFlit(i));
        sim.make<test::VectorSource>("src", a, flits);
        sim.make<EchoThroughMemory>("echo", port, a, b);
        sim.make<test::VectorSink>("sink", b);
        sim.run();
        return sim.collectStats().counters();
    };
    auto fast = run_once();
    ::setenv("GENESIS_SIM_NO_FASTFORWARD", "1", 1);
    auto slow = run_once();
    ::unsetenv("GENESIS_SIM_NO_FASTFORWARD");
    EXPECT_EQ(fast, slow);
    EXPECT_GT(fast.at("cycles"), 6'000u); // 20 reads x 300+ cycles
}

/** Sets an environment variable for the enclosing scope. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

/** An always-pass filter (key == key). */
modules::FilterConfig
passAllFilter()
{
    modules::FilterConfig cfg;
    cfg.lhs = modules::FilterOperand::key();
    cfg.op = modules::CompareOp::Eq;
    cfg.rhs = modules::FilterOperand::key();
    return cfg;
}

TEST(SleepWake, QueueCommitAndCloseWakeSleepers)
{
    // A Filter with an empty input declares itself blocked and leaves
    // the active set; a push commit and a close commit must each wake
    // it. Manual stepping keeps the deadlock detector out of the way.
    Simulator sim;
    auto *in = sim.makeQueue("in");
    auto *out = sim.makeQueue("out");
    auto *filter =
        sim.make<modules::Filter>("filter", in, out, passAllFilter());

    for (int i = 0; i < 3 && !filter->asleep(); ++i)
        sim.step();
    ASSERT_TRUE(filter->asleep());
    uint64_t slept_at = sim.cycle();
    for (int i = 0; i < 5; ++i)
        sim.step(); // nothing happens while it sleeps
    ASSERT_TRUE(filter->asleep());

    in->push(makeFlit(7));
    sim.step(); // the push commit wakes the filter
    EXPECT_FALSE(filter->asleep());
    EXPECT_GT(sim.cycle(), slept_at);
    for (int i = 0; i < 4 && !out->canPop(); ++i)
        sim.step();
    ASSERT_TRUE(out->canPop());
    EXPECT_EQ(out->front().key, 7);

    for (int i = 0; i < 3 && !filter->asleep(); ++i)
        sim.step(); // input empty again: back to sleep
    ASSERT_TRUE(filter->asleep());

    in->close();
    sim.step(); // the close commit wakes the filter
    EXPECT_FALSE(filter->asleep());
    for (int i = 0; i < 4 && !filter->done(); ++i)
        sim.step();
    EXPECT_TRUE(filter->done());
    EXPECT_TRUE(out->closed());
}

// EchoThroughMemory with the sleep/wake contract: every blocked tick
// names the event that can unblock it (memory retirement, queue commit).
class SleepyMemoryEcho final : public Module
{
  public:
    SleepyMemoryEcho(std::string name, MemoryPort *port,
                     HardwareQueue *in, HardwareQueue *out)
        : Module(std::move(name)), port_(port), in_(in), out_(out)
    {
    }

    void
    tick() override
    {
        if (closed_)
            return;
        if (waiting_) {
            if (port_->takeCompletedReadBytes() == 0) {
                countStall(stallMemory_);
                sleepOn(stallMemory_, {&port_->retireWaiters()});
                return;
            }
            noteProgress();
            waiting_ = false;
        }
        if (held_) {
            if (!out_->canPush()) {
                countStall(stallBackpressure_);
                sleepOn(stallBackpressure_, {&out_->waiters()});
                return;
            }
            out_->push(*held_);
            held_.reset();
            countFlit();
            return;
        }
        if (!in_->canPop()) {
            if (in_->drained()) {
                out_->close();
                closed_ = true;
            } else {
                sleepOn(nullptr, {&in_->waiters()});
            }
            return;
        }
        held_ = in_->pop();
        port_->issue(static_cast<uint64_t>(held_->key) * 64, 64, false);
        waiting_ = true;
    }

    bool done() const override { return closed_; }

  private:
    StatHandle stallMemory_ = stallCounter("memory");
    StatHandle stallBackpressure_ = stallCounter("backpressure");
    MemoryPort *port_;
    HardwareQueue *in_;
    HardwareQueue *out_;
    std::optional<Flit> held_;
    bool waiting_ = false;
    bool closed_ = false;
};

TEST(SleepWake, MemoryRetireWakesAndStaysCycleExact)
{
    // A module sleeping on a 300-cycle memory read must be woken by
    // sub-request retirement, and the whole run must stay bit-identical
    // across every scheduling mode: sleep on/off x fast-forward on/off.
    auto run_once = [] {
        MemoryConfig cfg;
        cfg.latencyCycles = 300;
        cfg.rowHitLatencyCycles = 300;
        Simulator sim(cfg);
        auto *a = sim.makeQueue("a", 2);
        auto *b = sim.makeQueue("b", 2);
        auto *port = sim.memory().makePort(0);
        std::vector<Flit> flits;
        for (int i = 0; i < 20; ++i)
            flits.push_back(makeFlit(i));
        sim.make<test::VectorSource>("src", a, flits);
        sim.make<SleepyMemoryEcho>("echo", port, a, b);
        sim.make<test::VectorSink>("sink", b);
        sim.run();
        return sim.collectStats().counters();
    };
    auto base = run_once();
    {
        ScopedEnv no_sleep("GENESIS_SIM_NO_SLEEP", "1");
        EXPECT_EQ(base, run_once());
    }
    {
        ScopedEnv no_ff("GENESIS_SIM_NO_FASTFORWARD", "1");
        EXPECT_EQ(base, run_once());
    }
    {
        ScopedEnv no_sleep("GENESIS_SIM_NO_SLEEP", "1");
        ScopedEnv no_ff("GENESIS_SIM_NO_FASTFORWARD", "1");
        EXPECT_EQ(base, run_once());
    }
    // The slept spans are credited to the stall bucket: ~300 stall
    // cycles per read, exactly as a spinning module would count.
    EXPECT_GE(base.at("echo.stall.memory"), 300u);
    EXPECT_GT(base.at("cycles"), 6'000u);
}

// Sleeps on the SPM hazard scoreboard while a given address is under an
// in-flight read-modify-write. Must be added BEFORE the updater so the
// mid-tick hazardRelease wake lands in its already-ticked past.
class HazardWaiter final : public Module
{
  public:
    HazardWaiter(std::string name, Scratchpad *spm, size_t addr)
        : Module(std::move(name)), spm_(spm), addr_(addr)
    {
    }

    void
    tick() override
    {
        if (done_)
            return;
        if (spm_->hazardHeld(addr_)) {
            sawHeld_ = true;
            countStall(stallHazard_);
            sleepOn(stallHazard_, {&spm_->hazardWaiters()});
            return;
        }
        if (sawHeld_) {
            done_ = true;
            noteProgress();
        }
    }

    bool done() const override { return done_; }
    bool sawHeld() const { return sawHeld_; }

  private:
    StatHandle stallHazard_ = stallCounter("hazard");
    Scratchpad *spm_;
    size_t addr_;
    bool sawHeld_ = false;
    bool done_ = false;
};

TEST(SleepWake, HazardClearanceWakesAndStaysCycleExact)
{
    auto run_once = [](bool *saw_held) {
        Simulator sim;
        auto *spm = sim.makeScratchpad("spm", 16);
        auto *in = sim.makeQueue("in");
        sim.make<test::VectorSource>(
            "src", in, std::vector<Flit>{makeFlit(5)});
        auto *waiter = sim.make<HazardWaiter>("waiter", spm, 5);
        modules::SpmUpdaterConfig ucfg;
        ucfg.mode = modules::SpmUpdateMode::ReadModifyWrite;
        sim.make<modules::SpmUpdater>("updater", spm, in, ucfg);
        sim.run();
        if (saw_held)
            *saw_held = waiter->sawHeld();
        EXPECT_TRUE(waiter->done());
        EXPECT_EQ(spm->read(5), 1); // the RMW increment landed
        return sim.collectStats().counters();
    };
    bool saw_held = false;
    auto base = run_once(&saw_held);
    EXPECT_TRUE(saw_held); // the hazard window was actually observed
    ScopedEnv no_sleep("GENESIS_SIM_NO_SLEEP", "1");
    EXPECT_EQ(base, run_once(nullptr));
}

TEST(SleepWake, ProvableDeadlockReportedImmediately)
{
    setQuiet(true);
    // Every module asleep + no pending memory event is a proven
    // deadlock: nothing can ever wake. The scheduler must report it
    // immediately (not after the 14k-cycle horizon) and name the
    // sleepers and the resources they await.
    Simulator sim;
    auto *in = sim.makeQueue("in"); // never fed, never closed
    auto *out = sim.makeQueue("out");
    sim.make<modules::Filter>("filter", in, out, passAllFilter());
    try {
        sim.run();
        FAIL() << "expected a deadlock panic";
    } catch (const PanicError &e) {
        EXPECT_LT(sim.cycle(), 100u);
        std::string msg = e.what();
        EXPECT_NE(msg.find("no module can ever wake"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("ASLEEP"), std::string::npos) << msg;
        EXPECT_NE(msg.find("queue in"), std::string::npos) << msg;
    }
    setQuiet(false);
}

TEST(Simulator, CollectStatsAggregates)
{
    Simulator sim;
    auto *q = sim.makeQueue("q");
    sim.make<test::VectorSource>("src", q,
                                 std::vector<Flit>{makeFlit(1)});
    sim.make<test::VectorSink>("sink", q);
    sim.run();
    StatRegistry stats = sim.collectStats();
    EXPECT_GT(stats.get("cycles"), 0u);
    EXPECT_EQ(stats.get("queue.q.flits"), 1u);
}

} // namespace
} // namespace genesis::sim

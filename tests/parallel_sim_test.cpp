/**
 * @file
 * Lane-sharded parallel scheduler tests (DESIGN.md §4e).
 *
 * The parallel scheduler's contract is bit-identity: simulated cycles,
 * every aggregated statistic, per-read results and deadlock diagnostics
 * must match the sequential scheduler exactly for any worker count.
 * The battery here runs a differential size × seed grid across worker
 * counts, cross-producted with the GENESIS_SIM_NO_SLEEP and
 * GENESIS_SIM_NO_FASTFORWARD escape hatches, plus targeted tests for
 * the thread-budget policy, trace forcing, the cross-shard coupling
 * guards, and deadlock-report determinism.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "base/logging.h"
#include "base/trace.h"
#include "core/accel_common.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/reducer.h"
#include "pipeline/builder.h"
#include "runtime/api.h"
#include "sim/parallel.h"
#include "sim/scheduler.h"

#include "sim_test_utils.h"

using namespace genesis;
using namespace genesis::sim;

namespace {

/** Sets an environment variable for the enclosing scope. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

constexpr size_t kLanes = 8;

/** Everything one run must reproduce bit-for-bit. */
struct RunResult {
    std::vector<int64_t> sums;
    uint64_t cycles = 0;
    std::string statsSig;
    int workersUsed = 1;
};

/** Wire one quality-sum pipeline (Figure 10) into a session lane. */
void
buildQualSumLane(runtime::AcceleratorSession &session, size_t lane,
                 std::vector<int64_t> qual, std::vector<uint32_t> lens)
{
    pipeline::PipelineBuilder builder(session.sim(),
                                      static_cast<int>(lane));
    modules::ColumnBuffer *qual_buf = session.configureMem(
        builder.scopedName("READS.QUAL"), std::move(qual),
        std::move(lens), 1);
    auto *qual_q = builder.queue("qual");
    auto *sum_q = builder.queue("sum");
    modules::ColumnBuffer *out =
        session.configureOutput(builder.scopedName("QSUM"), 4);

    modules::MemoryReaderConfig reader_cfg;
    reader_cfg.emitBoundaries = true;
    builder.add<modules::MemoryReader>("MemoryReader", "rd_qual",
                                       qual_buf, builder.port(), qual_q,
                                       reader_cfg);

    modules::ReducerConfig red_cfg;
    red_cfg.op = modules::ReduceOp::Sum;
    red_cfg.granularity = modules::ReduceGranularity::PerItem;
    red_cfg.valueField = 0;
    builder.add<modules::Reducer>("ReducerWide", "sum", qual_q, sum_q,
                                  red_cfg);

    modules::MemoryWriterConfig writer_cfg;
    writer_cfg.fieldIndex = 0;
    writer_cfg.elemSizeBytes = 4;
    builder.add<modules::MemoryWriter>("MemoryWriter", "wr_sum", out,
                                       builder.port(), sum_q,
                                       writer_cfg);
}

/** Run the kLanes-lane quality-sum design with `threads` workers. */
RunResult
runQualSum(const test::SmallWorkload &workload, int threads,
           TraceSink *trace = nullptr)
{
    const auto &reads = workload.reads.reads;
    size_t n = reads.size();
    size_t per = (n + kLanes - 1) / kLanes;

    runtime::RuntimeConfig cfg;
    cfg.simThreads = threads;
    runtime::AcceleratorSession session(cfg);
    if (trace)
        session.attachTrace(trace, "parallel_test");

    std::vector<std::pair<size_t, size_t>> chunks;
    for (size_t lane = 0; lane < kLanes; ++lane) {
        size_t first = std::min(n, lane * per);
        size_t last = std::min(n, first + per);
        if (first >= last)
            break;
        chunks.emplace_back(first, last);
        core::ReadColumns cols =
            core::ReadColumns::fromRange(reads, first, last);
        buildQualSumLane(session, lane, std::move(cols.qual),
                         std::move(cols.qualLens));
    }

    session.start();
    session.wait();

    RunResult result;
    result.workersUsed = session.sim().lastRunWorkers();
    result.cycles = session.sim().cycle();
    const StatRegistry stats = session.sim().collectStats();
    for (const auto &[name, value] : stats.counters()) {
        result.statsSig += name;
        result.statsSig += '=';
        result.statsSig += std::to_string(value);
        result.statsSig += ';';
    }
    result.sums.assign(n, 0);
    for (size_t lane = 0; lane < chunks.size(); ++lane) {
        auto [first, last] = chunks[lane];
        const modules::ColumnBuffer *flushed =
            session.flush("p" + std::to_string(lane) + ".QSUM");
        for (size_t i = 0; i < flushed->elements.size(); ++i)
            result.sums[first + i] = flushed->elements[i];
    }
    return result;
}

// --- thread-budget policy (sim/parallel.h) -----------------------------

TEST(ThreadPolicy, AutoUsesPerSessionCoreBudget)
{
    ThreadPolicy p;
    // 8 cores, one session: the whole machine.
    EXPECT_EQ(resolveWorkerCount(p, 8, 8), 8);
    // 8 cores, 4 concurrent sessions: 2 cores each.
    p.concurrentSessions = 4;
    EXPECT_EQ(resolveWorkerCount(p, 8, 8), 2);
    // More sessions than cores: never below one worker.
    p.concurrentSessions = 16;
    EXPECT_EQ(resolveWorkerCount(p, 8, 8), 1);
}

TEST(ThreadPolicy, ClampedToPopulatedShards)
{
    ThreadPolicy p;
    EXPECT_EQ(resolveWorkerCount(p, 3, 8), 3);
    p.requested = 6;
    EXPECT_EQ(resolveWorkerCount(p, 2, 8), 2);
    // Fewer than two populated shards: nothing to parallelize.
    EXPECT_EQ(resolveWorkerCount(p, 1, 8), 1);
    EXPECT_EQ(resolveWorkerCount(p, 0, 8), 1);
}

TEST(ThreadPolicy, ExplicitSingleSessionRequestHonored)
{
    // A single session's explicit request may exceed the core count:
    // determinism testing needs 4 workers on a 1-core host.
    ThreadPolicy p;
    p.requested = 4;
    EXPECT_EQ(resolveWorkerCount(p, 8, 1), 4);
}

TEST(ThreadPolicy, ExplicitRequestClampedUnderConcurrentSessions)
{
    // With concurrent sessions, even explicit requests share the host:
    // lanes x workers stays within hardware_concurrency.
    ThreadPolicy p;
    p.requested = 8;
    p.concurrentSessions = 4;
    EXPECT_EQ(resolveWorkerCount(p, 8, 8), 2);
    p.concurrentSessions = 2;
    EXPECT_EQ(resolveWorkerCount(p, 8, 8), 4);
}

TEST(ThreadPolicy, EnvironmentOverrides)
{
    ThreadPolicy p;
    p.requested = 2;
    {
        ScopedEnv threads("GENESIS_SIM_THREADS", "6");
        EXPECT_EQ(resolveWorkerCount(p, 8, 1), 6);
    }
    {
        // NO_THREADS beats everything, including an explicit request.
        ScopedEnv no_threads("GENESIS_SIM_NO_THREADS", "1");
        EXPECT_EQ(resolveWorkerCount(p, 8, 8), 1);
    }
    {
        ScopedEnv threads("GENESIS_SIM_THREADS", "6");
        ScopedEnv no_threads("GENESIS_SIM_NO_THREADS", "1");
        EXPECT_EQ(resolveWorkerCount(p, 8, 8), 1);
    }
}

TEST(ThreadPolicy, MalformedEnvironmentFallsBackToRequest)
{
    // Malformed GENESIS_SIM_THREADS used to be fatal; it now warns and
    // falls back to the configured request, and trailing garbage ("6x")
    // is no longer silently read as 6.
    setQuiet(true);
    ThreadPolicy p;
    p.requested = 2;
    {
        ScopedEnv threads("GENESIS_SIM_THREADS", "6x");
        EXPECT_EQ(resolveWorkerCount(p, 8, 1), 2);
    }
    {
        ScopedEnv threads("GENESIS_SIM_THREADS", "banana");
        EXPECT_EQ(resolveWorkerCount(p, 8, 1), 2);
    }
    {
        // Negative counts are out of the knob's range: fall back too.
        ScopedEnv threads("GENESIS_SIM_THREADS", "-3");
        EXPECT_EQ(resolveWorkerCount(p, 8, 1), 2);
    }
    setQuiet(false);
}

TEST(ThreadPolicy, SessionOversubscriptionClamp)
{
    // End-to-end: a session configured as one of four concurrent
    // sessions must not claim more than its share of the host's cores,
    // even with an explicit worker request (the BatchRunner composition
    // policy, runtime/batch.cpp).
    auto workload = test::makeSmallWorkload(5, 40);
    unsigned hw = std::thread::hardware_concurrency();
    int budget = static_cast<int>(std::max(1u, hw / 4));

    runtime::RuntimeConfig cfg;
    cfg.simThreads = 8;
    cfg.concurrentSessions = 4;
    runtime::AcceleratorSession session(cfg);
    const auto &reads = workload.reads.reads;
    size_t half = reads.size() / 2;
    for (size_t lane = 0; lane < 2; ++lane) {
        core::ReadColumns cols = core::ReadColumns::fromRange(
            reads, lane * half, lane ? reads.size() : half);
        buildQualSumLane(session, lane, std::move(cols.qual),
                         std::move(cols.qualLens));
    }
    session.start();
    session.wait();
    EXPECT_LE(session.sim().lastRunWorkers(), budget);
}

// --- bit-identity battery ---------------------------------------------

/** (num_pairs, seed) differential grid point. */
class ParallelParity
    : public ::testing::TestWithParam<std::tuple<int64_t, uint64_t>>
{
};

TEST_P(ParallelParity, ThreadsAreBitIdentical)
{
    auto [pairs, seed] = GetParam();
    auto workload = test::makeSmallWorkload(seed, pairs);

    // Each escape-hatch combination is its own differential universe:
    // the baseline and every threaded run share the combination, and
    // all universes must agree with each other too (sleep and
    // fast-forward are themselves bit-identical transforms).
    struct EnvCase {
        const char *label;
        bool noSleep;
        bool noFastForward;
    };
    const EnvCase env_cases[] = {
        {"default", false, false},
        {"no_sleep", true, false},
        {"no_fastforward", false, true},
        {"no_sleep+no_fastforward", true, true},
    };

    RunResult reference;
    bool have_reference = false;
    for (const auto &env_case : env_cases) {
        std::vector<std::unique_ptr<ScopedEnv>> env;
        if (env_case.noSleep)
            env.push_back(std::make_unique<ScopedEnv>(
                "GENESIS_SIM_NO_SLEEP", "1"));
        if (env_case.noFastForward)
            env.push_back(std::make_unique<ScopedEnv>(
                "GENESIS_SIM_NO_FASTFORWARD", "1"));

        RunResult baseline = runQualSum(workload, 1);
        ASSERT_EQ(baseline.workersUsed, 1) << env_case.label;
        for (int threads : {2, 4, 8}) {
            RunResult r = runQualSum(workload, threads);
            EXPECT_GT(r.workersUsed, 1)
                << env_case.label << " threads=" << threads;
            EXPECT_EQ(r.cycles, baseline.cycles)
                << env_case.label << " threads=" << threads;
            EXPECT_EQ(r.statsSig, baseline.statsSig)
                << env_case.label << " threads=" << threads;
            EXPECT_EQ(r.sums, baseline.sums)
                << env_case.label << " threads=" << threads;
        }
        if (!have_reference) {
            reference = baseline;
            have_reference = true;
        } else {
            EXPECT_EQ(baseline.cycles, reference.cycles)
                << env_case.label;
            EXPECT_EQ(baseline.statsSig, reference.statsSig)
                << env_case.label;
            EXPECT_EQ(baseline.sums, reference.sums) << env_case.label;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SizeSeedGrid, ParallelParity,
    ::testing::Combine(::testing::Values<int64_t>(24, 96),
                       ::testing::Values<uint64_t>(3, 11)),
    [](const auto &info) {
        return "pairs" + std::to_string(std::get<0>(info.param)) +
               "_seed" + std::to_string(std::get<1>(info.param));
    });

// --- tracing forces the sequential scheduler ---------------------------

TEST(ParallelSim, TraceForcesSequentialAndIsIdentical)
{
    auto workload = test::makeSmallWorkload(7, 60);

    TraceSink seq_trace;
    RunResult seq = runQualSum(workload, 1, &seq_trace);
    EXPECT_EQ(seq.workersUsed, 1);

    // The TraceSink is single-writer (DESIGN.md §7): a threaded request
    // with a trace attached must fall back to one worker and produce
    // the identical trace.
    TraceSink par_trace;
    RunResult par = runQualSum(workload, 4, &par_trace);
    EXPECT_EQ(par.workersUsed, 1);
    EXPECT_EQ(par.cycles, seq.cycles);
    EXPECT_EQ(par.statsSig, seq.statsSig);
    EXPECT_EQ(par.sums, seq.sums);

    seq_trace.finish();
    par_trace.finish();
    std::ostringstream seq_json, par_json;
    seq_trace.writeJson(seq_json);
    par_trace.writeJson(par_json);
    EXPECT_EQ(par_json.str(), seq_json.str());
}

// --- deadlock diagnostics ---------------------------------------------

/**
 * Run a design where lane 2 wedges (a sink on a queue nobody feeds or
 * closes) while the other lanes complete; @return the deadlock panic
 * message.
 */
std::string
deadlockReport(int threads)
{
    setQuiet(true);
    Simulator sim;
    ThreadPolicy policy;
    policy.requested = threads;
    sim.setThreadPolicy(policy);

    for (int lane = 0; lane < 4; ++lane) {
        pipeline::PipelineBuilder builder(sim, lane);
        auto *q = builder.queue("data");
        if (lane != 2) {
            builder.add<test::VectorSource>(
                "VectorSource", "src", q,
                std::vector<Flit>{makeFlit(lane), makeFlit(lane + 10)});
        }
        builder.add<test::VectorSink>("VectorSink", "sink", q);
    }

    std::string message;
    try {
        sim.run();
    } catch (const PanicError &e) {
        message = e.what();
    }
    setQuiet(false);
    EXPECT_FALSE(message.empty()) << "expected a deadlock panic";
    return message;
}

TEST(ParallelSim, DeadlockReportIdenticalAcrossThreadCounts)
{
    // The deadlock report embeds dumpState(): cycle, per-queue and
    // per-module state. Sharding must not perturb any of it — the dump
    // walks components in insertion (lane-major build) order and all
    // counters are bit-identical, so the reports match byte-for-byte.
    std::string seq = deadlockReport(1);
    std::string par = deadlockReport(4);
    EXPECT_EQ(par, seq);
    EXPECT_NE(seq.find("deadlock"), std::string::npos);
}

// --- cross-shard coupling guards --------------------------------------

TEST(ParallelSim, CrossShardQueuePushPanicsDeterministically)
{
    // A module of lane 1 wired (incorrectly) to a lane-0 queue: under
    // the parallel scheduler this would be a data race, so the guard in
    // HardwareQueue::markDirty must panic deterministically instead.
    // Race-free by construction: no lane-0 module ever touches the
    // queue, so the push is the only access.
    setQuiet(true);
    Simulator sim;
    ThreadPolicy policy;
    policy.requested = 2;
    sim.setThreadPolicy(policy);

    pipeline::PipelineBuilder lane0(sim, 0);
    auto *foreign_q = lane0.queue("foreign");
    lane0.add<test::VectorSink>("VectorSink", "sink", foreign_q);

    pipeline::PipelineBuilder lane1(sim, 1);
    lane1.add<test::VectorSource>(
        "VectorSource", "src", foreign_q,
        std::vector<Flit>{makeFlit(1)});

    try {
        sim.run();
        FAIL() << "expected a cross-shard panic";
    } catch (const PanicError &e) {
        EXPECT_NE(
            std::string(e.what()).find("during a parallel phase"),
            std::string::npos)
            << e.what();
    }
    setQuiet(false);
}

TEST(ParallelSim, SameDesignLegalWhenSequential)
{
    // The cross-shard wiring above is legal under the sequential
    // scheduler (there is no parallel phase to race in): the guards
    // must not fire when only one worker runs.
    setQuiet(true);
    Simulator sim;
    pipeline::PipelineBuilder lane0(sim, 0);
    auto *foreign_q = lane0.queue("foreign");
    auto *sink =
        lane0.add<test::VectorSink>("VectorSink", "sink", foreign_q);
    pipeline::PipelineBuilder lane1(sim, 1);
    lane1.add<test::VectorSource>("VectorSource", "src", foreign_q,
                                  std::vector<Flit>{makeFlit(1)});
    ScopedEnv no_threads("GENESIS_SIM_NO_THREADS", "1");
    sim.run();
    EXPECT_EQ(sink->collected().size(), 1u);
    setQuiet(false);
}

/** Issues one read on a (possibly foreign) port, then idles. */
class PortPoker : public Module
{
  public:
    PortPoker(std::string name, MemoryPort *port)
        : Module(std::move(name)), port_(port)
    {
    }

    void
    tick() override
    {
        if (!issued_ && port_->canIssue()) {
            port_->issue(0, 64, false);
            issued_ = true;
        }
    }

    bool done() const override { return issued_; }

  private:
    MemoryPort *port_;
    bool issued_ = false;
};

TEST(ParallelSim, CrossShardMemoryIssuePanicsDeterministically)
{
    // A lane-1 module issuing on a lane-0 memory port would race lane
    // 0's worker during the parallel phase (and corrupt the lookahead
    // window's per-shard issue clocks): the port-ownership guard in
    // MemoryPort::issue must panic deterministically. Race-free by
    // construction — no lane-0 module touches the port.
    setQuiet(true);
    Simulator sim;
    ThreadPolicy policy;
    policy.requested = 2;
    sim.setThreadPolicy(policy);

    pipeline::PipelineBuilder lane0(sim, 0);
    auto *foreign_port = lane0.port();
    auto *q0 = lane0.queue("data");
    lane0.add<test::VectorSource>("VectorSource", "src", q0,
                                  std::vector<Flit>{makeFlit(1)});
    lane0.add<test::VectorSink>("VectorSink", "sink", q0);

    pipeline::PipelineBuilder lane1(sim, 1);
    lane1.add<PortPoker>("PortPoker", "poker", foreign_port);

    try {
        sim.run();
        FAIL() << "expected a cross-shard memory-issue panic";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("cross-shard memory issue"),
                  std::string::npos)
            << e.what();
    }
    setQuiet(false);
}

TEST(ParallelSim, ForeignPortLegalWhenSequential)
{
    // The same wiring runs to completion under the sequential
    // scheduler: no parallel phase, no shard ownership to violate.
    setQuiet(true);
    Simulator sim;
    pipeline::PipelineBuilder lane0(sim, 0);
    auto *foreign_port = lane0.port();
    auto *q0 = lane0.queue("data");
    lane0.add<test::VectorSource>("VectorSource", "src", q0,
                                  std::vector<Flit>{makeFlit(1)});
    auto *sink =
        lane0.add<test::VectorSink>("VectorSink", "sink", q0);
    pipeline::PipelineBuilder lane1(sim, 1);
    lane1.add<PortPoker>("PortPoker", "poker", foreign_port);
    ScopedEnv no_threads("GENESIS_SIM_NO_THREADS", "1");
    sim.run();
    EXPECT_EQ(sink->collected().size(), 1u);
    setQuiet(false);
}

// --- lookahead windows and the channel-parallel memory tick ------------

/** (num_pairs, seed) grid point for the window/mem-thread battery. */
class WindowParity
    : public ::testing::TestWithParam<std::tuple<int64_t, uint64_t>>
{
};

TEST_P(WindowParity, WindowSizesAndMemThreadsAreBitIdentical)
{
    auto [pairs, seed] = GetParam();
    auto workload = test::makeSmallWorkload(seed, pairs);

    // The sequential scheduler ignores both knobs: one reference run.
    RunResult baseline = runQualSum(workload, 1);
    ASSERT_EQ(baseline.workersUsed, 1);

    // Lookahead windows (DESIGN.md §4f): lane shards tick up to
    // `window` memory-quiet cycles per barrier. Window 1 degenerates to
    // single-cycle barriers (the escape hatch); every size must be
    // bit-identical to sequential.
    for (const char *window : {"1", "4", "16"}) {
        ScopedEnv env("GENESIS_SIM_WINDOW", window);
        for (int threads : {2, 4}) {
            RunResult r = runQualSum(workload, threads);
            EXPECT_GT(r.workersUsed, 1)
                << "window=" << window << " threads=" << threads;
            EXPECT_EQ(r.cycles, baseline.cycles)
                << "window=" << window << " threads=" << threads;
            EXPECT_EQ(r.statsSig, baseline.statsSig)
                << "window=" << window << " threads=" << threads;
            EXPECT_EQ(r.sums, baseline.sums)
                << "window=" << window << " threads=" << threads;
        }
    }

    // Channel-parallel memory tick, alone and composed with windows.
    for (const char *mem_threads : {"2", "4"}) {
        ScopedEnv env("GENESIS_SIM_MEM_THREADS", mem_threads);
        RunResult seq = runQualSum(workload, 1);
        EXPECT_EQ(seq.cycles, baseline.cycles)
            << "mem_threads=" << mem_threads;
        EXPECT_EQ(seq.statsSig, baseline.statsSig)
            << "mem_threads=" << mem_threads;
        EXPECT_EQ(seq.sums, baseline.sums)
            << "mem_threads=" << mem_threads;

        ScopedEnv window("GENESIS_SIM_WINDOW", "16");
        RunResult par = runQualSum(workload, 4);
        EXPECT_EQ(par.cycles, baseline.cycles)
            << "mem_threads=" << mem_threads << " window=16";
        EXPECT_EQ(par.statsSig, baseline.statsSig)
            << "mem_threads=" << mem_threads << " window=16";
        EXPECT_EQ(par.sums, baseline.sums)
            << "mem_threads=" << mem_threads << " window=16";
    }
}

INSTANTIATE_TEST_SUITE_P(
    SizeSeedGrid, WindowParity,
    ::testing::Combine(::testing::Values<int64_t>(24, 96),
                       ::testing::Values<uint64_t>(3, 11)),
    [](const auto &info) {
        return "pairs" + std::to_string(std::get<0>(info.param)) +
               "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(ParallelSim, DeadlockReportIdenticalUnderWindowsAndMemThreads)
{
    // The wedged-lane diagnostic must stay byte-identical when the
    // windowed barrier and the channel-parallel memory tick are active:
    // the deadlock probe degrades to single-cycle stepping near the
    // horizon, so the report sees the exact sequential state.
    std::string seq = deadlockReport(1);
    {
        ScopedEnv window("GENESIS_SIM_WINDOW", "16");
        EXPECT_EQ(deadlockReport(4), seq);
    }
    {
        ScopedEnv window("GENESIS_SIM_WINDOW", "4");
        ScopedEnv mem_threads("GENESIS_SIM_MEM_THREADS", "4");
        EXPECT_EQ(deadlockReport(4), seq);
    }
    EXPECT_NE(seq.find("deadlock"), std::string::npos);
}

} // namespace

/**
 * @file
 * Adversarial SPM read-modify-write hazard tests.
 *
 * The SpmUpdater's three-stage RMW pipeline must never lose an update,
 * no matter how hostile the address stream: every pattern below is
 * checked word-for-word against a serial software reference, and the
 * interlock's stall statistics are cross-checked against what the
 * pattern provably requires (conflict-free streams stall zero cycles;
 * a single hot bin serializes the pipeline).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "base/rng.h"
#include "modules/spm_updater.h"
#include "sim/scheduler.h"
#include "sim_test_utils.h"

namespace genesis::modules {
namespace {

struct HazardRun {
    uint64_t cycles = 0;
    uint64_t hazardStalls = 0;
    uint64_t flits = 0;
    uint64_t spmReads = 0;
    uint64_t spmWrites = 0;
    std::vector<int64_t> words;
};

/** Drive one address stream through an RMW updater and collect stats. */
HazardRun
runRmw(const std::vector<int64_t> &addrs, size_t spm_words)
{
    sim::Simulator simulator;
    auto *spm = simulator.makeScratchpad("bins", spm_words, 4);
    auto *q = simulator.makeQueue("updates", 8);

    std::vector<sim::Flit> flits;
    flits.reserve(addrs.size());
    for (int64_t addr : addrs)
        flits.push_back(sim::makeFlit(addr));
    simulator.make<test::VectorSource>("src", q, std::move(flits));

    SpmUpdaterConfig cfg;
    cfg.mode = SpmUpdateMode::ReadModifyWrite;
    auto *updater = simulator.make<SpmUpdater>("rmw", spm, q, cfg);

    HazardRun r;
    r.cycles = simulator.run();
    r.hazardStalls = updater->stats().get("stall.rmw_hazard");
    r.flits = updater->stats().get("flits");
    // Capture access statistics before the verification reads below
    // bump the read counter.
    r.spmReads = spm->stats().get("reads");
    r.spmWrites = spm->stats().get("writes");
    r.words.resize(spm_words);
    for (size_t i = 0; i < spm_words; ++i)
        r.words[i] = spm->read(i);
    return r;
}

/** The serial reference: one increment per address occurrence. */
std::vector<int64_t>
serialReference(const std::vector<int64_t> &addrs, size_t spm_words)
{
    std::vector<int64_t> words(spm_words, 0);
    for (int64_t addr : addrs)
        ++words[static_cast<size_t>(addr)];
    return words;
}

void
expectMatchesSerial(const std::vector<int64_t> &addrs, size_t spm_words,
                    const HazardRun &r)
{
    auto expected = serialReference(addrs, spm_words);
    ASSERT_EQ(r.words.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(r.words[i], expected[i])
            << "lost or duplicated update at bin " << i;
    }
    EXPECT_EQ(r.flits, addrs.size());
    // Every accepted flit performs exactly one SPM read and one write.
    EXPECT_EQ(r.spmReads, addrs.size());
    EXPECT_EQ(r.spmWrites, addrs.size());
}

TEST(SpmHazard, SingleHotBinSerializesButLosesNothing)
{
    // Worst case: every update hits the same bin, so each flit must
    // wait for the previous one to clear all three pipeline stages.
    const size_t kWords = 16;
    std::vector<int64_t> addrs(300, 7);
    auto r = runRmw(addrs, kWords);
    expectMatchesSerial(addrs, kWords, r);
    EXPECT_GT(r.hazardStalls, addrs.size())
        << "a fully conflicting stream must stall repeatedly";
    // Serialized throughput: roughly one update per pipeline depth.
    EXPECT_GT(r.cycles, 2 * addrs.size());
}

TEST(SpmHazard, AlternatingPairStillConflicts)
{
    // Two addresses alternating at distance 2 — inside the 3-deep
    // pipeline window, so the interlock must still engage.
    const size_t kWords = 8;
    std::vector<int64_t> addrs;
    for (int i = 0; i < 200; ++i)
        addrs.push_back(i % 2);
    auto r = runRmw(addrs, kWords);
    expectMatchesSerial(addrs, kWords, r);
    EXPECT_GT(r.hazardStalls, 0u);
}

TEST(SpmHazard, BurstsOfThreeMaximizeStageOverlap)
{
    // Runs of identical addresses sized exactly to the pipeline depth.
    const size_t kWords = 32;
    std::vector<int64_t> addrs;
    for (int i = 0; i < 300; ++i)
        addrs.push_back((i / 3) % static_cast<int>(kWords));
    auto r = runRmw(addrs, kWords);
    expectMatchesSerial(addrs, kWords, r);
    EXPECT_GT(r.hazardStalls, 0u);
}

TEST(SpmHazard, ConflictFreeStreamNeverStalls)
{
    // Strictly increasing addresses: no two updates within the hazard
    // window, so the interlock must never fire.
    const size_t kWords = 256;
    std::vector<int64_t> addrs;
    for (int i = 0; i < 256; ++i)
        addrs.push_back(i);
    auto r = runRmw(addrs, kWords);
    expectMatchesSerial(addrs, kWords, r);
    EXPECT_EQ(r.hazardStalls, 0u);
    // Pipelined throughput: near one update per cycle, far below the
    // serialized case.
    EXPECT_LT(r.cycles, 2 * addrs.size());
}

TEST(SpmHazard, SeededRandomHotPoolMatchesSerialReference)
{
    // Random draws from a tiny pool keep the conflict probability high
    // while varying the exact interleavings across seeds.
    const size_t kWords = 8;
    for (uint64_t seed : {1u, 9u, 23u, 101u}) {
        Rng rng(seed);
        std::vector<int64_t> addrs;
        for (int i = 0; i < 500; ++i)
            addrs.push_back(static_cast<int64_t>(rng.below(4)));
        auto r = runRmw(addrs, kWords);
        expectMatchesSerial(addrs, kWords, r);
        EXPECT_GT(r.hazardStalls, 0u) << "seed " << seed;
    }
}

TEST(SpmHazard, InterlockedRunIsDeterministic)
{
    // The same hostile stream must produce identical cycles and stall
    // counts on repeated runs (the interlock has no hidden state).
    std::vector<int64_t> addrs;
    Rng rng(5);
    for (int i = 0; i < 400; ++i)
        addrs.push_back(static_cast<int64_t>(rng.below(3)));
    auto r1 = runRmw(addrs, 8);
    auto r2 = runRmw(addrs, 8);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.hazardStalls, r2.hazardStalls);
    EXPECT_EQ(r1.words, r2.words);
}

} // namespace
} // namespace genesis::modules

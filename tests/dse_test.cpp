/**
 * @file
 * Tests for the design-space exploration harness (src/dse): grid
 * enumeration, worker-count determinism, Pareto dominance, per-point
 * error capture, and the frontier sanity gate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "base/logging.h"
#include "dse/dse.h"

namespace genesis::dse {
namespace {

/** A cheap markdup-only grid for the end-to-end tests. */
SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.accels = {Accel::MarkDup};
    spec.pipelines = {4};
    spec.psizes = {32'768};
    spec.memPresets = {"f1-ddr4", "pim"};
    spec.dmaPresets = {"pcie3"};
    spec.clocksMHz = {250.0};
    spec.numPairs = 60;
    return spec;
}

TEST(DseSpec, DefaultGridCoversTheIssueFloor)
{
    SweepSpec spec = SweepSpec::defaultGrid();
    // >= 40 points across >= 4 swept knob axes (ISSUE acceptance).
    EXPECT_GE(spec.numPoints(), 40u);
    int swept_axes = 0;
    swept_axes += spec.pipelines.size() > 1;
    swept_axes += spec.psizes.size() > 1;
    swept_axes += spec.memPresets.size() > 1;
    swept_axes += spec.dmaPresets.size() > 1;
    swept_axes += spec.clocksMHz.size() > 1;
    EXPECT_GE(swept_axes, 4);
    // The grid includes a near-bank/PIM-style memory configuration.
    EXPECT_NE(std::find(spec.memPresets.begin(), spec.memPresets.end(),
                        "pim"),
              spec.memPresets.end());
    EXPECT_TRUE(spec.validate().empty());
}

TEST(DseSpec, PimPresetIsNearBank)
{
    const MemPreset *pim = nullptr;
    for (const auto &preset : builtinMemPresets()) {
        if (preset.name == "pim")
            pim = &preset;
    }
    ASSERT_NE(pim, nullptr);
    EXPECT_TRUE(pim->nearBank);
    EXPECT_LT(pim->dmaTrafficFraction, 1.0);
    EXPECT_GT(pim->memory.numChannels, 4);
    // The built-in presets must all be simulatable.
    for (const auto &preset : builtinMemPresets())
        EXPECT_TRUE(sim::validate(preset.memory).empty())
            << preset.name;
}

TEST(DseSpec, ValidateNamesTheEmptyAxis)
{
    SweepSpec spec;
    spec.accels.clear();
    spec.clocksMHz = {0.0};
    spec.pipelines = {0};
    std::vector<std::string> errors = spec.validate();
    auto contains = [&errors](const char *needle) {
        for (const auto &e : errors) {
            if (e.find(needle) != std::string::npos)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(contains("accels"));
    EXPECT_TRUE(contains("clocksMHz[0]"));
    EXPECT_TRUE(contains("pipelines[0]"));
    EXPECT_THROW(runSweep(spec), FatalError);
}

TEST(DseSpec, EnumerationIsDeterministicWithDistinctSeeds)
{
    SweepSpec spec = SweepSpec::defaultGrid();
    std::vector<SweepPoint> a = enumeratePoints(spec);
    std::vector<SweepPoint> b = enumeratePoints(spec);
    ASSERT_EQ(a.size(), spec.numPoints());
    std::vector<uint64_t> seeds;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].index, i);
        EXPECT_EQ(a[i].seed, b[i].seed);
        seeds.push_back(a[i].seed);
    }
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()),
              seeds.end());
}

TEST(DseSweep, FrontierJsonIsByteIdenticalAtAnyWorkerCount)
{
    SweepSpec spec = smallSpec();
    HarnessOptions serial;
    serial.workers = 1;
    HarnessOptions wide;
    wide.workers = 4;
    SweepResult a = runSweep(spec, serial);
    SweepResult b = runSweep(spec, wide);
    EXPECT_EQ(toJson(a), toJson(b));
    EXPECT_TRUE(checkFrontier(a).empty());
}

TEST(DseSweep, SlowClockPointIsDominatedAndExcluded)
{
    // Same architecture at 125 vs 250 MHz: identical price and
    // resources, strictly lower throughput — provably dominated, so it
    // must not appear on the frontier.
    SweepSpec spec = smallSpec();
    spec.memPresets = {"f1-ddr4"};
    spec.clocksMHz = {125.0, 250.0};
    SweepResult result = runSweep(spec);
    ASSERT_EQ(result.points.size(), 2u);
    const PointResult &slow = result.points[0];
    const PointResult &fast = result.points[1];
    ASSERT_TRUE(slow.ok);
    ASSERT_TRUE(fast.ok);
    EXPECT_LT(slow.basesPerSecond, fast.basesPerSecond);
    EXPECT_DOUBLE_EQ(slow.dollarsPerHour, fast.dollarsPerHour);
    EXPECT_DOUBLE_EQ(slow.maxUtilPct, fast.maxUtilPct);
    EXPECT_TRUE(dominates(fast, slow));
    EXPECT_FALSE(dominates(slow, fast));
    ASSERT_EQ(result.frontiers.count("markdup"), 1u);
    EXPECT_EQ(result.frontiers.at("markdup"),
              (std::vector<size_t>{1}));
    EXPECT_TRUE(checkFrontier(result).empty());
}

TEST(DseSweep, InvalidPresetIsACleanPerPointError)
{
    setQuiet(true);
    SweepSpec spec = smallSpec();
    MemPreset broken;
    broken.name = "broken";
    broken.memory.numChannels = 0;
    spec.customPresets = {broken};
    spec.memPresets = {"broken", "f1-ddr4"};
    SweepResult result = runSweep(spec);
    setQuiet(false);
    ASSERT_EQ(result.points.size(), 2u);
    const PointResult &bad = result.points[0];
    const PointResult &good = result.points[1];
    EXPECT_FALSE(bad.ok);
    // The error names the offending field, prefixed by the model.
    EXPECT_NE(bad.error.find("memory.numChannels"), std::string::npos)
        << bad.error;
    EXPECT_TRUE(good.ok) << good.error;
    // The broken point never reaches the frontier; the sweep survives.
    for (size_t i : result.frontiers.at("markdup"))
        EXPECT_NE(i, bad.point.index);
    EXPECT_TRUE(checkFrontier(result).empty());
}

TEST(DseSweep, UnknownPresetNameIsAPerPointError)
{
    SweepSpec spec = smallSpec();
    spec.memPresets = {"no-such-preset"};
    SweepResult result = runSweep(spec);
    ASSERT_EQ(result.points.size(), 1u);
    EXPECT_FALSE(result.points[0].ok);
    EXPECT_NE(result.points[0].error.find("memPreset"),
              std::string::npos);
    // All points failed: the gate reports the starved frontier.
    EXPECT_FALSE(checkFrontier(result).empty());
}

TEST(DseSweep, CheckFrontierCatchesACorruptedFrontier)
{
    SweepSpec spec = smallSpec();
    spec.memPresets = {"f1-ddr4"};
    spec.clocksMHz = {125.0, 250.0};
    SweepResult result = runSweep(spec);
    ASSERT_TRUE(checkFrontier(result).empty());
    // Put the dominated point on the frontier instead.
    result.frontiers["markdup"] = {0};
    std::vector<std::string> problems = checkFrontier(result);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("dominated"), std::string::npos);
    // An empty frontier despite feasible points is also a failure.
    result.frontiers["markdup"] = {};
    EXPECT_FALSE(checkFrontier(result).empty());
}

TEST(DseDominance, StrictImprovementRequired)
{
    PointResult a, b;
    a.basesPerSecond = b.basesPerSecond = 100.0;
    a.dollarsPerGenome = b.dollarsPerGenome = 2.0;
    a.maxUtilPct = b.maxUtilPct = 50.0;
    // Identical points tie: neither dominates.
    EXPECT_FALSE(dominates(a, b));
    EXPECT_FALSE(dominates(b, a));
    a.dollarsPerGenome = 1.5;
    EXPECT_TRUE(dominates(a, b));
    // A trade-off (faster but more expensive) is not dominance.
    b.basesPerSecond = 150.0;
    EXPECT_FALSE(dominates(a, b));
    EXPECT_FALSE(dominates(b, a));
}

TEST(DseDominance, FrontierKeepsOnlyNonDominated)
{
    std::vector<PointResult> pts(3);
    pts[0].basesPerSecond = 100;
    pts[0].dollarsPerGenome = 1.0;
    pts[0].maxUtilPct = 10;
    pts[1].basesPerSecond = 200;
    pts[1].dollarsPerGenome = 2.0;
    pts[1].maxUtilPct = 20;
    pts[2].basesPerSecond = 90; // dominated by pts[0]
    pts[2].dollarsPerGenome = 1.5;
    pts[2].maxUtilPct = 15;
    std::vector<size_t> frontier = paretoFrontier(pts, {0, 1, 2});
    EXPECT_EQ(frontier, (std::vector<size_t>{0, 1}));
}

} // namespace
} // namespace genesis::dse

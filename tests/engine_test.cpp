/**
 * @file
 * Tests for the software query engine: every relational operator, the
 * genomics explodes, variables, loops, custom ops, and the end-to-end
 * Figure-4 query against direct software ground truth.
 */

#include <gtest/gtest.h>

#include "base/logging.h"
#include "core/example_accel.h"
#include "engine/executor.h"
#include "sim_test_utils.h"
#include "sql/parser.h"
#include "table/genomic_schema.h"
#include "table/partition.h"

namespace genesis::engine {
namespace {

using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

/** Small fixture with a toy table catalog. */
class EngineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Table t("t", Schema{{"A", DataType::Int64},
                            {"B", DataType::Int64},
                            {"NAME", DataType::String}});
        t.appendRow({Value(1), Value(10), Value("x")});
        t.appendRow({Value(2), Value(20), Value("y")});
        t.appendRow({Value(3), Value(30), Value("x")});
        t.appendRow({Value(4), Value(40), Value("z")});
        catalog_.put("t", std::move(t));

        Table u("u", Schema{{"A", DataType::Int64},
                            {"C", DataType::Int64}});
        u.appendRow({Value(2), Value(200)});
        u.appendRow({Value(3), Value(300)});
        u.appendRow({Value(9), Value(900)});
        catalog_.put("u", std::move(u));
    }

    Table
    run(const std::string &sql)
    {
        Executor executor(catalog_);
        auto result = executor.run(sql);
        EXPECT_TRUE(result.has_value());
        return std::move(*result);
    }

    Catalog catalog_;
};

TEST_F(EngineTest, SelectProjection)
{
    Table r = run("SELECT B, A + 1 AS A1 FROM t");
    ASSERT_EQ(r.numRows(), 4u);
    EXPECT_EQ(r.at(0, "B").asInt(), 10);
    EXPECT_EQ(r.at(0, "A1").asInt(), 2);
}

TEST_F(EngineTest, SelectStar)
{
    Table r = run("SELECT * FROM t");
    EXPECT_EQ(r.numRows(), 4u);
    EXPECT_EQ(r.numColumns(), 3u);
}

TEST_F(EngineTest, WhereFilters)
{
    Table r = run("SELECT A FROM t WHERE A > 1 AND B < 40");
    ASSERT_EQ(r.numRows(), 2u);
    EXPECT_EQ(r.at(0, "A").asInt(), 2);
    EXPECT_EQ(r.at(1, "A").asInt(), 3);
}

TEST_F(EngineTest, WhereOnStrings)
{
    Table r = run("SELECT A FROM t WHERE NAME == 'x'");
    EXPECT_EQ(r.numRows(), 2u);
}

TEST_F(EngineTest, InnerJoin)
{
    Table r = run("SELECT t.B, u.C FROM t INNER JOIN u ON t.A = u.A");
    ASSERT_EQ(r.numRows(), 2u);
    EXPECT_EQ(r.at(0, "B").asInt(), 20);
    EXPECT_EQ(r.at(0, "C").asInt(), 200);
}

TEST_F(EngineTest, LeftJoinKeepsUnmatched)
{
    Table r = run("SELECT t.A, u.C FROM t LEFT JOIN u ON t.A = u.A");
    ASSERT_EQ(r.numRows(), 4u);
    EXPECT_TRUE(r.at(0, "C").isNull());  // A=1 unmatched
    EXPECT_EQ(r.at(1, "C").asInt(), 200);
}

TEST_F(EngineTest, OuterJoinKeepsBothSides)
{
    Table r = run("SELECT * FROM t OUTER JOIN u ON t.A = u.A");
    EXPECT_EQ(r.numRows(), 5u); // 4 left rows + unmatched u.A=9
}

TEST_F(EngineTest, JoinDuplicateColumnsQualified)
{
    Table r = run("SELECT t.A, u.A FROM t INNER JOIN u ON t.A = u.A");
    EXPECT_EQ(r.numColumns(), 2u);
    EXPECT_EQ(r.at(0, 0).asInt(), r.at(0, 1).asInt());
}

TEST_F(EngineTest, GroupByWithAggregates)
{
    Table r = run(
        "SELECT NAME, COUNT(*) AS n, SUM(B) AS s FROM t GROUP BY NAME");
    ASSERT_EQ(r.numRows(), 3u);
    // Groups come back in key order: x, y, z.
    EXPECT_EQ(r.at(0, "n").asInt(), 2);
    EXPECT_EQ(r.at(0, "s").asInt(), 40);
    EXPECT_EQ(r.at(1, "n").asInt(), 1);
}

TEST_F(EngineTest, GlobalAggregates)
{
    Table r = run("SELECT COUNT(*), SUM(A), MIN(B), MAX(B) FROM t");
    ASSERT_EQ(r.numRows(), 1u);
    EXPECT_EQ(r.at(0, 0).asInt(), 4);
    EXPECT_EQ(r.at(0, 1).asInt(), 10);
    EXPECT_EQ(r.at(0, 2).asInt(), 10);
    EXPECT_EQ(r.at(0, 3).asInt(), 40);
}

TEST_F(EngineTest, AggregateOfComparison)
{
    Table r = run("SELECT SUM(NAME == 'x') FROM t");
    EXPECT_EQ(r.at(0, 0).asInt(), 2);
}

TEST_F(EngineTest, MixedAggregateExpression)
{
    Table r = run("SELECT SUM(B) / COUNT(*) FROM t");
    EXPECT_EQ(r.at(0, 0).asInt(), 25);
}

TEST_F(EngineTest, AggregateOverEmptyInput)
{
    Table r = run("SELECT COUNT(*), SUM(A) FROM t WHERE A > 100");
    ASSERT_EQ(r.numRows(), 1u);
    EXPECT_EQ(r.at(0, 0).asInt(), 0);
    EXPECT_EQ(r.at(0, 1).asInt(), 0);
}

TEST_F(EngineTest, LimitOffsetCount)
{
    Table r = run("SELECT A FROM t LIMIT 1, 2");
    ASSERT_EQ(r.numRows(), 2u);
    EXPECT_EQ(r.at(0, "A").asInt(), 2);
    EXPECT_EQ(r.at(1, "A").asInt(), 3);
}

TEST_F(EngineTest, LimitCountOnly)
{
    Table r = run("SELECT A FROM t LIMIT 3");
    EXPECT_EQ(r.numRows(), 3u);
}

TEST_F(EngineTest, CreateTableAndReuse)
{
    run("CREATE TABLE big AS SELECT A, B FROM t WHERE B >= 20;"
        "SELECT COUNT(*) FROM big");
    Executor executor(catalog_);
    auto r = executor.run(
        "CREATE TABLE big AS SELECT A FROM t WHERE B >= 20;"
        "SELECT COUNT(*) FROM big");
    EXPECT_EQ(r->at(0, 0).asInt(), 3);
}

TEST_F(EngineTest, InsertIntoAppends)
{
    Executor executor(catalog_);
    executor.run("INSERT INTO out SELECT A FROM t WHERE A == 1;"
                 "INSERT INTO out SELECT A FROM t WHERE A == 2");
    const Table *out = catalog_.find("out");
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->numRows(), 2u);
}

TEST_F(EngineTest, VariablesInExpressions)
{
    Table r = run("DECLARE @x int; SET @x = 2 + 1;"
                  "SELECT A FROM t WHERE A == @x");
    ASSERT_EQ(r.numRows(), 1u);
    EXPECT_EQ(r.at(0, "A").asInt(), 3);
}

TEST_F(EngineTest, UndeclaredVariableFatal)
{
    Executor executor(catalog_);
    EXPECT_THROW(executor.run("SET @nope = 1"), FatalError);
    EXPECT_THROW(executor.run("SELECT A FROM t WHERE A == @nope"),
                 FatalError);
}

TEST_F(EngineTest, ForLoopIteratesRows)
{
    Executor executor(catalog_);
    executor.run(R"(
        FOR Row IN t:
            INSERT INTO doubled SELECT Row.A * 2 FROM t LIMIT 1;
        END LOOP
    )");
    const Table *out = catalog_.find("doubled");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(out->numRows(), 4u);
    EXPECT_EQ(out->at(3, 0).asInt(), 8);
}

TEST_F(EngineTest, TempTablesScopedPerIteration)
{
    Executor executor(catalog_);
    executor.run(R"(
        FOR Row IN t:
            CREATE TABLE #tmp AS SELECT Row.A AS V FROM t LIMIT 1;
            INSERT INTO collected SELECT V FROM #tmp;
        END LOOP
    )");
    const Table *out = catalog_.find("collected");
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->numRows(), 4u);
    // The temp table itself never leaks into the catalog.
    EXPECT_EQ(catalog_.find("tmp"), nullptr);
}

TEST_F(EngineTest, LoopVariableAsScanSource)
{
    Executor executor(catalog_);
    executor.run(R"(
        FOR Row IN t:
            INSERT INTO echoed SELECT A, B FROM Row;
        END LOOP
    )");
    const Table *out = catalog_.find("echoed");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(out->numRows(), 4u);
    EXPECT_EQ(out->at(2, 0).asInt(), 3);
}

TEST_F(EngineTest, ExecCustomOp)
{
    Executor executor(catalog_);
    executor.registerCustomOp(
        "RowDoubler",
        [](const std::vector<const Table *> &inputs) {
            Table out("out", Schema{{"D", DataType::Int64}});
            for (size_t r = 0; r < inputs[0]->numRows(); ++r)
                out.appendRow({Value(inputs[0]->at(r, 0).asInt() * 2)});
            return out;
        });
    executor.run("EXEC RowDoubler Input1 = t INTO doubled");
    const Table *out = catalog_.find("doubled");
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->at(0, "D").asInt(), 2);
}

TEST_F(EngineTest, ExecUnknownModuleFatal)
{
    Executor executor(catalog_);
    EXPECT_THROW(executor.run("EXEC Nope A = t"), FatalError);
}

TEST_F(EngineTest, UnknownTableFatal)
{
    Executor executor(catalog_);
    EXPECT_THROW(executor.run("SELECT * FROM missing"), FatalError);
}

TEST_F(EngineTest, PartitionLookupViaPidColumn)
{
    Table ref("REF", Schema{{"X", DataType::Int64},
                            {"PID", DataType::Int64}});
    ref.appendRow({Value(1), Value(100)});
    ref.appendRow({Value(2), Value(100)});
    ref.appendRow({Value(3), Value(200)});
    catalog_.put("REF", std::move(ref));
    Table r = run("SELECT X FROM REF PARTITION (100)");
    EXPECT_EQ(r.numRows(), 2u);
}

TEST_F(EngineTest, PartitionLookupViaRegistry)
{
    Table part("p", Schema{{"X", DataType::Int64}});
    part.appendRow({Value(42)});
    catalog_.putPartition("READS", 7, std::move(part));
    Table r = run("SELECT X FROM READS PARTITION (3 + 4)");
    ASSERT_EQ(r.numRows(), 1u);
    EXPECT_EQ(r.at(0, "X").asInt(), 42);
}

TEST_F(EngineTest, PosExplode)
{
    Table arr("arr", Schema{{"SEQ", DataType::Array8},
                            {"START", DataType::Int64}});
    arr.appendRow({Value(table::Blob{5, 6, 7}), Value(100)});
    arr.appendRow({Value(table::Blob{9}), Value(200)});
    catalog_.put("arr", std::move(arr));
    Table r = run("PosExplode (arr.SEQ, arr.START) FROM arr");
    ASSERT_EQ(r.numRows(), 4u);
    EXPECT_EQ(r.at(0, "POS").asInt(), 100);
    EXPECT_EQ(r.at(0, "SEQ").asInt(), 5);
    EXPECT_EQ(r.at(2, "POS").asInt(), 102);
    EXPECT_EQ(r.at(3, "POS").asInt(), 200);
}

TEST_F(EngineTest, ReadExplodeMatchesFigure3)
{
    // Figure 3's read as a table row.
    genome::AlignedRead read;
    read.chr = 1;
    read.pos = 104;
    read.cigar = genome::Cigar::parse("2S3M1I1M1D2M");
    read.seq = genome::stringToSequence("AGGTAAACA");
    for (char c : std::string("##9>>AAB?"))
        read.qual.push_back(static_cast<uint8_t>(c - 33));
    Table reads = table::buildReadsTable({read});
    catalog_.put("R", std::move(reads));

    Table r = run("ReadExplode (R.POS, R.CIGAR, R.SEQ, R.QUAL) FROM R");
    ASSERT_EQ(r.numRows(), 8u);
    EXPECT_EQ(r.at(0, "POS").asInt(), 104);
    EXPECT_TRUE(r.at(3, "POS").isNull());  // inserted base
    EXPECT_TRUE(r.at(5, "BP").isNull());   // deleted base
    EXPECT_TRUE(r.at(5, "QUAL").isNull());
    EXPECT_EQ(r.at(7, "POS").asInt(), 110);
}

// --- End-to-end: the Figure-4 query vs software ground truth -------------

class MatchCountQuery : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MatchCountQuery, EngineMatchesDirectComputation)
{
    auto w = test::makeSmallWorkload(GetParam(), 60, 30'000, 1);
    constexpr int64_t kPsize = 10'000;
    table::Partitioner partitioner(kPsize);
    auto partitions = partitioner.partitionReads(w.reads.reads);
    ASSERT_FALSE(partitions.empty());

    for (const auto &part : partitions) {
        auto sql_counts = core::matchCountsSqlEngine(
            w.reads.reads, part, w.genome, kPsize, 512);
        auto sw_counts = core::matchCountsSoftware(
            w.reads.reads, part.readIndices, w.genome);
        ASSERT_EQ(sql_counts.size(), sw_counts.size());
        for (size_t i = 0; i < sql_counts.size(); ++i) {
            EXPECT_EQ(sql_counts[i], sw_counts[i])
                << "read " << i << " in partition " << part.pid;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchCountQuery,
                         ::testing::Values(1u, 8u, 21u));

} // namespace
} // namespace genesis::engine

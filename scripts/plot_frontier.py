#!/usr/bin/env python3
"""Render bench/sim_dse design-space results as SVG frontier charts.

Reads the JSON document sim_dse prints (or writes via --out): a
``points`` list of design points and a ``frontiers`` map from
accelerator name to the indices of its Pareto-optimal points. For each
accelerator this script draws simulated throughput (bases/second)
against cost ($/genome): every feasible point as a grey dot, the Pareto
frontier as connected highlighted markers, infeasible points (does not
fit the VU9P, or the run failed) as hollow crosses.

Pure standard library on purpose — CI containers have no matplotlib —
so the SVG is emitted directly.

Usage:
    plot_frontier.py results.json [--out-dir DIR] [--check]

``--out-dir`` (default ``.``) receives one ``frontier_<accel>.svg`` per
accelerator. ``--check`` is the CI smoke mode: render every chart
in-memory, validate it is well-formed XML and contains the expected
number of frontier markers, and write nothing.
"""

import argparse
import json
import sys
import xml.etree.ElementTree as ET

WIDTH, HEIGHT = 640, 440
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 70, 20, 40, 50
PLOT_W = WIDTH - MARGIN_L - MARGIN_R
PLOT_H = HEIGHT - MARGIN_T - MARGIN_B


def nice_ticks(lo, hi, max_ticks=6):
    """Round tick positions covering [lo, hi] (1/2/5 progression)."""
    if hi <= lo:
        hi = lo + (abs(lo) if lo else 1.0)
    span = hi - lo
    step = 10 ** len(str(int(span))) if span >= 1 else 1.0
    # Shrink a decade at a time until the count lands in range.
    while span / step < max_ticks / 2:
        for div in (2.0, 2.5, 2.0):
            if span / step >= max_ticks / 2:
                break
            step /= div
    ticks = []
    t = int(lo / step) * step
    while t <= hi + step * 1e-9:
        if t >= lo - step * 1e-9:
            ticks.append(t)
        t += step
    return ticks


def fmt_num(v):
    """Short human axis label: 412M, 0.12, 1.5k."""
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(v) >= scale:
            s = f"{v / scale:.3g}"
            return s + suffix
    return f"{v:.3g}"


def esc(s):
    return (str(s).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def render_chart(accel, points, frontier_idx):
    """Return the SVG text of one accelerator's frontier chart."""
    feasible = [p for p in points if p.get("ok") and p.get("fits")]
    infeasible = [p for p in points
                  if not (p.get("ok") and p.get("fits"))]
    frontier = [points[i] for i in frontier_idx]
    xs = [p["dollars_per_genome"] for p in feasible] or [0.0, 1.0]
    ys = [p["bases_per_second"] for p in feasible] or [0.0, 1.0]
    pad_x = (max(xs) - min(xs)) * 0.06 or max(xs) * 0.06 or 0.5
    pad_y = (max(ys) - min(ys)) * 0.06 or max(ys) * 0.06 or 0.5
    x_lo, x_hi = min(xs) - pad_x, max(xs) + pad_x
    y_lo, y_hi = min(ys) - pad_y, max(ys) + pad_y

    def sx(v):
        return MARGIN_L + (v - x_lo) / (x_hi - x_lo) * PLOT_W

    def sy(v):
        return MARGIN_T + PLOT_H - (v - y_lo) / (y_hi - y_lo) * PLOT_H

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" '
        f'font-family="sans-serif" font-size="11">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{WIDTH / 2}" y="24" text-anchor="middle" '
        f'font-size="15">{esc(accel)}: throughput vs $/genome '
        f'({len(feasible)} designs, {len(frontier)} on frontier)</text>',
    ]
    # Axes, ticks, grid.
    for t in nice_ticks(x_lo, x_hi):
        x = sx(t)
        parts.append(f'<line x1="{x:.1f}" y1="{MARGIN_T}" x2="{x:.1f}" '
                     f'y2="{MARGIN_T + PLOT_H}" stroke="#eeeeee"/>')
        parts.append(f'<text x="{x:.1f}" y="{MARGIN_T + PLOT_H + 16}" '
                     f'text-anchor="middle">{fmt_num(t)}</text>')
    for t in nice_ticks(y_lo, y_hi):
        y = sy(t)
        parts.append(f'<line x1="{MARGIN_L}" y1="{y:.1f}" '
                     f'x2="{MARGIN_L + PLOT_W}" y2="{y:.1f}" '
                     f'stroke="#eeeeee"/>')
        parts.append(f'<text x="{MARGIN_L - 6}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{fmt_num(t)}</text>')
    parts.append(f'<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{PLOT_W}" '
                 f'height="{PLOT_H}" fill="none" stroke="#444444"/>')
    parts.append(f'<text x="{MARGIN_L + PLOT_W / 2}" '
                 f'y="{HEIGHT - 12}" text-anchor="middle">'
                 f'cost ($/genome)</text>')
    parts.append(f'<text x="16" y="{MARGIN_T + PLOT_H / 2}" '
                 f'text-anchor="middle" transform="rotate(-90 16 '
                 f'{MARGIN_T + PLOT_H / 2})">throughput '
                 f'(bases/second)</text>')

    for p in infeasible:
        if "dollars_per_genome" not in p or "bases_per_second" not in p:
            continue
        x, y = sx(p["dollars_per_genome"]), sy(p["bases_per_second"])
        parts.append(f'<path d="M{x - 3:.1f} {y - 3:.1f} L{x + 3:.1f} '
                     f'{y + 3:.1f} M{x - 3:.1f} {y + 3:.1f} '
                     f'L{x + 3:.1f} {y - 3:.1f}" stroke="#cc6666" '
                     f'fill="none" class="infeasible"/>')
    frontier_set = set(frontier_idx)
    for p in feasible:
        if p.get("index") in frontier_set:
            continue
        x, y = sx(p["dollars_per_genome"]), sy(p["bases_per_second"])
        parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" '
                     f'fill="#b0b0b0" class="dominated"/>')
    # Frontier polyline in cost order, then its markers on top.
    ordered = sorted(frontier, key=lambda p: p["dollars_per_genome"])
    if len(ordered) > 1:
        pts = " ".join(f'{sx(p["dollars_per_genome"]):.1f},'
                       f'{sy(p["bases_per_second"]):.1f}'
                       for p in ordered)
        parts.append(f'<polyline points="{pts}" fill="none" '
                     f'stroke="#1f77b4" stroke-width="1.5"/>')
    for p in ordered:
        x, y = sx(p["dollars_per_genome"]), sy(p["bases_per_second"])
        label = (f'{p.get("mem", "?")}/{p.get("dma", "?")} '
                 f'x{p.get("pipelines", "?")} '
                 f'@{p.get("clock_mhz", "?")}MHz')
        parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4.5" '
                     f'fill="#1f77b4" class="frontier">'
                     f'<title>{esc(label)}</title></circle>')
    parts.append("</svg>")
    return "\n".join(parts)


def main(argv):
    ap = argparse.ArgumentParser(
        description="Render sim_dse frontier JSON as SVG charts.")
    ap.add_argument("results", help="sim_dse JSON document (- = stdin)")
    ap.add_argument("--out-dir", default=".",
                    help="directory for frontier_<accel>.svg files")
    ap.add_argument("--check", action="store_true",
                    help="validate the charts in-memory, write nothing")
    args = ap.parse_args(argv)

    if args.results == "-":
        doc = json.load(sys.stdin)
    else:
        with open(args.results) as f:
            doc = json.load(f)
    points = doc.get("points", [])
    frontiers = doc.get("frontiers", {})
    if not points or not frontiers:
        print("plot_frontier: no points/frontiers in input",
              file=sys.stderr)
        return 1

    failures = 0
    for accel in sorted(frontiers):
        idx = frontiers[accel]
        svg = render_chart(accel, points, idx)
        if args.check:
            try:
                root = ET.fromstring(svg)
            except ET.ParseError as e:
                print(f"plot_frontier: {accel}: malformed SVG: {e}",
                      file=sys.stderr)
                failures += 1
                continue
            ns = "{http://www.w3.org/2000/svg}"
            markers = [el for el in root.iter(f"{ns}circle")
                       if el.get("class") == "frontier"]
            if len(markers) != len(idx):
                print(f"plot_frontier: {accel}: {len(markers)} frontier "
                      f"markers rendered, expected {len(idx)}",
                      file=sys.stderr)
                failures += 1
                continue
            print(f"plot_frontier: {accel}: OK "
                  f"({len(idx)} frontier points)")
        else:
            path = f"{args.out_dir}/frontier_{accel}.svg"
            with open(path, "w") as f:
                f.write(svg)
            print(f"plot_frontier: wrote {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Perf-regression guard for the simulator benches.

Runs bench/sim_throughput, bench/sim_multipipe, bench/sim_membw,
bench/sim_service, bench/sim_dse and bench/sql_join, collects
wall-clock metrics, and compares them against a committed
baseline (bench/perf_baseline.json). Any metric that regresses by more
than the tolerance (default 15%) fails the run, so host-side slowdowns
in the simulator core are caught in CI rather than discovered months
later in a profile.

Usage:
  # Compare against the committed baseline (CI mode; exits non-zero on
  # regression) and write the fresh numbers for artifact upload:
  scripts/check_perf.py --bench-dir build/bench \
      --baseline bench/perf_baseline.json --out perf_current.json

  # Re-measure and overwrite the baseline (after intentional perf work
  # or a CI-runner hardware change):
  scripts/check_perf.py --bench-dir build/bench \
      --baseline bench/perf_baseline.json --update

Wall-clock numbers are hardware-dependent: the baseline must be
refreshed (--update) when the machine class running the guard changes.
Improvements are reported but never fail the guard; refresh the
baseline to lock them in. GENESIS_PERF_TOLERANCE overrides the
tolerance (e.g. 0.30 on noisy shared runners).
"""

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import time

# Workload shrink used for every timed run so the guard stays fast and
# the baseline is comparable across invocations.
BENCH_ENV = {"GENESIS_BENCH_PAIRS": "500"}

# Metrics whose baseline is below this floor are reported but never
# failed: at sub-50ms scales, scheduler jitter exceeds any real signal.
NOISE_FLOOR_SECONDS = 0.05

# Each bench runs this many times; every metric keeps its best (minimum)
# value. Wall-clock minima are far more stable than single samples.
REPEATS = 3


def run_timed(cmd, extra_env):
    env = dict(os.environ)
    env.update(extra_env)
    start = time.monotonic()
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    wall = time.monotonic() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"bench failed: {' '.join(cmd)}")
    return wall, proc.stdout


def collect_once(bench_dir):
    """Run the three benches once and return {metric_name: seconds}."""
    metrics = {}

    wall, out = run_timed([os.path.join(bench_dir, "sim_throughput")],
                          BENCH_ENV)
    metrics["sim_throughput.wall_seconds"] = wall
    for line in out.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        rec = json.loads(line)
        if "scenario" in rec and "host_seconds" in rec:
            metrics[f"sim_throughput.{rec['scenario']}.host_seconds"] = \
                rec["host_seconds"]

    wall, out = run_timed([os.path.join(bench_dir, "sim_multipipe")],
                          BENCH_ENV)
    metrics["sim_multipipe.wall_seconds"] = wall
    array = re.search(r"\[.*\]", out, re.S)
    if array:
        for rec in json.loads(array.group(0)):
            if "lanes" in rec:
                key = f"sim_multipipe.lanes{rec['lanes']}.wall_seconds"
            elif "threads" in rec:
                # Lane-sharded parallel-scheduler sweep: guards both the
                # sequential scheduler (threads1) and the parallel path's
                # wall clock against host-side slowdowns.
                key = f"sim_multipipe.threads{rec['threads']}.wall_seconds"
            else:
                continue
            metrics[key] = rec["wall_seconds"]

    # Memory bandwidth sweep: the whole-bench wall clock plus the
    # per-driver and mem-thread records the bench emits. The bench
    # fatals on any per-cycle vs event-jump or mem-thread divergence,
    # so a regression here is purely host-side perf.
    wall, out = run_timed([os.path.join(bench_dir, "sim_membw")],
                          BENCH_ENV)
    metrics["sim_membw.wall_seconds"] = wall
    for line in out.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        rec = json.loads(line)
        if rec.get("bench") != "sim_membw":
            continue
        if "mem_threads" in rec:
            # Channel-parallel tick sweep (streaming, event-jump
            # driver): sim_membw.memthreads{N} tracks where the scan
            # fan-out trade sits on this runner class.
            key = f"sim_membw.memthreads{rec['mem_threads']}.wall_seconds"
            metrics[key] = rec["wall_seconds"]
        elif "pattern" in rec:
            metrics[f"sim_membw.{rec['pattern']}.evjump_wall_seconds"] = \
                rec["evjump_wall_seconds"]

    # Multi-tenant service bench: the wall clock guards the whole
    # queue/scheduler/cache path; the calibration record guards one
    # job's service time. The bench itself verifies bit-identity to
    # host goldens and balanced accounting, failing the run otherwise.
    service_env = dict(BENCH_ENV)
    service_env["GENESIS_SERVICE_JOBS"] = "32"
    wall, out = run_timed([os.path.join(bench_dir, "sim_service")],
                          service_env)
    metrics["sim_service.wall_seconds"] = wall
    array = re.search(r"\[.*\]", out, re.S)
    if array:
        for rec in json.loads(array.group(0)):
            if rec.get("phase") == "calibration":
                metrics["sim_service.mean_service_seconds"] = \
                    rec["mean_service_seconds"]

    # DSE sweep: a shrunken grid (small synthetic workload) timed end to
    # end; guards the whole sweep path (96 simulations farmed across
    # cores plus the model joins). --check also gates frontier sanity
    # on every guard run.
    dse_env = dict(BENCH_ENV)
    dse_env["GENESIS_DSE_PAIRS"] = "60"
    wall, _ = run_timed(
        [os.path.join(bench_dir, "sim_dse"), "--check"], dse_env)
    metrics["sim_dse.wall_seconds"] = wall

    # SQL join suite: per-mode totals plus the optimizer/vectorizer
    # speedups. The bench itself verifies result parity across modes
    # and fails on mismatch, so a regression here is purely perf.
    wall, out = run_timed([os.path.join(bench_dir, "sql_join")],
                          BENCH_ENV)
    metrics["sql_join.wall_seconds"] = wall
    for line in out.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        rec = json.loads(line)
        if rec.get("bench") != "sql_join":
            continue
        if rec.get("summary"):
            for mode in ("naive", "optimized", "vectorized"):
                metrics[f"sql_join.{mode}_seconds"] = \
                    rec[f"{mode}_seconds"]
        elif "query" in rec:
            key = f"sql_join.{rec['query']}.{rec['mode']}_seconds"
            metrics[key] = rec["wall_seconds"]
    return metrics


def collect_metrics(bench_dir):
    """Best-of-REPEATS metrics across repeated bench runs."""
    best = {}
    for _ in range(REPEATS):
        for name, value in collect_once(bench_dir).items():
            if name not in best or value < best[name]:
                best[name] = value
    return best


def compare(baseline, current, tolerance):
    """Return (failures, report_lines)."""
    failures = []
    lines = []
    for name, base in sorted(baseline["metrics"].items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        delta = (cur - base) / base if base > 0 else 0.0
        status = "ok"
        if base < NOISE_FLOOR_SECONDS:
            status = "skip (below noise floor)"
        elif delta > tolerance:
            status = "REGRESSION"
            failures.append(
                f"{name}: {base:.4f}s -> {cur:.4f}s "
                f"(+{delta * 100.0:.1f}% > {tolerance * 100.0:.0f}%)")
        elif delta < -tolerance:
            status = "improved (consider --update)"
        lines.append(f"  {name:50s} {base:8.4f}s -> {cur:8.4f}s "
                     f"{delta * 100.0:+6.1f}%  {status}")
    for name in sorted(set(current) - set(baseline["metrics"])):
        lines.append(f"  {name:50s} {'':>8s}    {current[name]:8.4f}s "
                     f"{'':>7s}  new (not in baseline)")
    return failures, lines


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", required=True,
                        help="directory holding the built benches")
    parser.add_argument("--baseline", required=True,
                        help="baseline JSON path")
    parser.add_argument("--out", default=None,
                        help="write the fresh metrics to this JSON file")
    parser.add_argument("--update", "--update-baseline",
                        action="store_true", dest="update",
                        help="overwrite the baseline instead of comparing")
    parser.add_argument("--tolerance", type=float, default=float(
        os.environ.get("GENESIS_PERF_TOLERANCE", "0.15")),
        help="fractional regression allowed before failing (default "
             "0.15; env GENESIS_PERF_TOLERANCE)")
    args = parser.parse_args()

    metrics = collect_metrics(args.bench_dir)
    payload = {
        "note": "wall-clock perf baseline; refresh with "
                "scripts/check_perf.py --update on hardware changes",
        "bench_env": BENCH_ENV,
        "host": platform.platform(),
        "metrics": metrics,
    }
    if args.out:
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")

    if args.update:
        with open(args.baseline, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        for name, value in sorted(metrics.items()):
            print(f"  {name:50s} {value:8.4f}s")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)
    failures, lines = compare(baseline, metrics, args.tolerance)
    print(f"perf guard (tolerance {args.tolerance * 100.0:.0f}%, "
          f"baseline host: {baseline.get('host', 'unknown')})")
    print("\n".join(lines))
    if failures:
        print("\nPERF REGRESSIONS DETECTED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nno perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())

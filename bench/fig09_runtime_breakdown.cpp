/**
 * @file
 * Figure 9 reproduction: runtime breakdown of the GATK4 Best Practices
 * data preprocessing pipeline, with and without an alignment accelerator
 * (GenAx-class throughput, 4.058 M reads/s).
 *
 * Paper reference bars:
 *   software alignment:  Alignment 63.4% | Dup Marking 10.0% |
 *                        Metadata 15.4% | BQSR(table) 4.6% |
 *                        BQSR(update) 4.3% (+2.3% other)
 *   with align accel:    Dup Marking 27.2% | Metadata 41.8% |
 *                        BQSR(table) 12.4% | BQSR(update) 11.6%
 */

#include "bench_common.h"
#include "gatk/preprocess.h"

using namespace genesis;

int
main()
{
    // The software aligner is the slowest stage; a quarter-size
    // workload keeps this bench brisk.
    auto workload = bench::makeBenchWorkload(bench::envPairs() / 4);
    bench::printHeader("Figure 9: GATK4 preprocessing runtime breakdown",
                       workload);

    auto print_row = [](const char *title,
                        const gatk::StageTimes &times) {
        std::printf("%-28s total %8.3f s\n  %s\n", title, times.total(),
                    times.breakdownStr().c_str());
    };

    {
        auto reads = workload.reads;
        gatk::PreprocessOptions options;
        options.runAligner = true;
        auto result = gatk::runPreprocess(reads, workload.genome,
                                          options);
        print_row("software alignment", result.times);
        std::printf("  (paper: Alignment 63.4%% | Duplicate Marking "
                    "10.0%% | Metadata Update 15.4%% | BQSR table 4.6%% "
                    "| BQSR update 4.3%%)\n\n");
    }
    {
        auto reads = workload.reads;
        gatk::PreprocessOptions options;
        options.alignmentAcceleratorReadsPerSec = 4.058e6; // GenAx
        auto result = gatk::runPreprocess(reads, workload.genome,
                                          options);
        print_row("with alignment accelerator", result.times);
        std::printf("  (paper: Alignment 0.7%% | Duplicate Marking "
                    "27.2%% | Metadata Update 41.8%% | BQSR table "
                    "12.4%% | BQSR update 11.6%%)\n");
        double data_manip = 100.0 *
            (result.times.duplicateMarking +
             result.times.metadataUpdate +
             result.times.bqsrTableConstruction +
             result.times.bqsrQualityUpdate) /
            result.times.total();
        std::printf("\nwith alignment accelerated, data-manipulation "
                    "stages take %.1f%% of the pipeline (paper: 93%%) "
                    "- the Amdahl argument for Genesis\n", data_manip);
    }
    return 0;
}

/**
 * @file
 * Table III reproduction: cost comparison of Genesis and the software
 * baseline. Two parts:
 *  1. the paper's own arithmetic — feeding the published speedups
 *     through the price model must land exactly on the published cost
 *     reductions and normalized performance/$;
 *  2. the same arithmetic on speedups measured on this host's workload.
 */

#include "bench_common.h"
#include "cost/cost.h"

using namespace genesis;

namespace {

void
printRow(const cost::CostComparison &c)
{
    std::printf("%-28s %12.2fx %12.2fx %16.2fx\n", c.stage.c_str(),
                c.costReduction, c.speedup, c.normalizedPerfPerDollar);
}

} // namespace

int
main()
{
    std::printf("Table III: cost comparison of Genesis and baseline\n");
    std::printf("(cost reduction = speedup x $%.2f/hr / $%.2f/hr)\n\n",
                cost::InstanceSpec::r5_4xlarge().dollarsPerHour,
                cost::InstanceSpec::f1_2xlarge().dollarsPerHour);

    std::printf("--- with the paper's published speedups ---\n");
    std::printf("%-28s %13s %13s %17s\n", "stage", "cost red.",
                "speedup", "norm. perf/$");
    printRow(cost::compareCost("Mark Duplicates", 2.08));
    printRow(cost::compareCost("Metadata Update", 19.25));
    printRow(cost::compareCost("BQSR (table construction)", 12.59));
    std::printf("(paper: 2.08x/15.05x/9.84x cost reduction, "
                "4.31x/289.59x/123.92x perf/$)\n\n");

    std::printf("--- with speedups measured on this workload (vs the "
                "GATK-calibrated baseline, as in fig13a) ---\n");
    auto workload = bench::makeBenchWorkload();
    auto m = bench::measureStages(workload);
    double md = bench::paperGatkSeconds(bench::Stage::MarkDuplicates,
                                        workload.totalBases) /
        m.mdTiming.total();
    double mu = bench::paperGatkSeconds(bench::Stage::MetadataUpdate,
                                        workload.totalBases) /
        m.muTiming.total();
    double bq = bench::paperGatkSeconds(bench::Stage::BqsrTable,
                                        workload.totalBases) /
        m.bqTiming.total();
    std::printf("%-28s %13s %13s %17s\n", "stage", "cost red.",
                "speedup", "norm. perf/$");
    printRow(cost::compareCost("Mark Duplicates", md));
    printRow(cost::compareCost("Metadata Update", mu));
    printRow(cost::compareCost("BQSR (table construction)", bq));

    std::printf("\nper-genome dollar estimate, scaled to a 700 M-read "
                "genome (GATK baseline vs measured Genesis rate):\n");
    double scale = 700e6 * 151.0 /
        static_cast<double>(workload.totalBases);
    auto dollars = [&](const char *stage, bench::Stage kind,
                       double genesis_seconds) {
        std::printf("  %-26s GATK $%.2f vs Genesis $%.2f\n", stage,
                    cost::runCost(bench::paperGatkSeconds(
                                      kind, 700e6 * 151),
                                  cost::InstanceSpec::r5_4xlarge()),
                    cost::runCost(genesis_seconds * scale,
                                  cost::InstanceSpec::f1_2xlarge()));
    };
    dollars("Mark Duplicates", bench::Stage::MarkDuplicates,
            m.mdTiming.total());
    dollars("Metadata Update", bench::Stage::MetadataUpdate,
            m.muTiming.total());
    dollars("BQSR", bench::Stage::BqsrTable, m.bqTiming.total());
    return 0;
}

/**
 * @file
 * Ablation: on-chip scratchpad reference reuse (Section III-D and the
 * related-work argument against Q100-style stream-buffer-only designs).
 *
 * Runs the match-count accelerator twice on the same workload: once with
 * the paper's design (reference staged in an SPM, read per interval) and
 * once with a GatherReader that re-fetches every read's reference span
 * from device memory. Reports cycles and DRAM read traffic.
 */

#include "bench_common.h"
#include "core/example_accel.h"

using namespace genesis;

int
main()
{
    // Data reuse pays off when many reads share each reference window:
    // use a single chromosome at paper-like (~20x) coverage.
    auto workload = bench::makeBenchWorkload(bench::envPairs(), 1);
    bench::printHeader("Ablation: SPM reference reuse vs re-fetching",
                       workload);

    auto run = [&](bool use_spm) {
        core::ExampleAccelConfig cfg;
        cfg.numPipelines = 4;
        cfg.psize = 32'768;
        cfg.useSpm = use_spm;
        return core::ExampleAccelerator(cfg).run(workload.reads,
                                                 workload.genome);
    };
    auto with_spm = run(true);
    auto without = run(false);

    // Both variants must agree functionally.
    bool identical = with_spm.counts == without.counts;

    auto report = [](const char *name,
                     const core::ExampleAccelResult &r) {
        std::printf("%-24s %12llu cycles  %12llu B read from DRAM\n",
                    name,
                    static_cast<unsigned long long>(r.info.totalCycles),
                    static_cast<unsigned long long>(
                        r.info.stats.get("mem.read_bytes")));
    };
    report("SPM (paper design)", with_spm);
    report("no SPM (gather)", without);

    double traffic_ratio =
        static_cast<double>(without.info.stats.get("mem.read_bytes")) /
        static_cast<double>(with_spm.info.stats.get("mem.read_bytes"));
    double cycle_ratio =
        static_cast<double>(without.info.totalCycles) /
        static_cast<double>(with_spm.info.totalCycles);
    std::printf("\nresults identical: %s\n",
                identical ? "yes" : "NO (bug!)");
    std::printf("re-fetching moves %.2fx the DRAM bytes and takes "
                "%.2fx the cycles: the data reuse the scratchpads "
                "capture is what lets many pipelines share the memory "
                "system.\n", traffic_ratio, cycle_ratio);
    return identical ? 0 : 1;
}

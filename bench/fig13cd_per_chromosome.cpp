/**
 * @file
 * Figure 13(c)/(d) reproduction: per-chromosome speedups of Metadata
 * Update and BQSR (covariate table construction). The paper plots one
 * speedup bar per human chromosome; here each synthetic chromosome gets
 * a row. Chromosome lengths decay geometrically (as human ones roughly
 * do), so the rows also show how speedup behaves as inputs shrink.
 *
 * Baselines are the GATK-calibrated per-stage throughputs derived from
 * the paper's own runtime breakdown (see bench_common.h); the measured
 * C++ baselines are also printed for reference.
 */

#include "bench_common.h"

using namespace genesis;

int
main()
{
    auto workload = bench::makeBenchWorkload(bench::envPairs(), 6);
    bench::printHeader(
        "Figure 13(c)/(d): per-chromosome Metadata Update / BQSR "
        "speedups", workload);

    std::printf("%-8s %9s %8s | %10s %10s %8s | %10s %10s %8s\n",
                "chrom", "ref bp", "reads", "MU gatk*", "MU genesis",
                "speedup", "BQ gatk*", "BQ genesis", "speedup");

    for (const auto &chrom : workload.genome.chromosomes()) {
        std::vector<genome::AlignedRead> chrom_reads;
        int64_t chrom_bases = 0;
        for (const auto &read : workload.reads) {
            if (read.chr == chrom.id) {
                chrom_reads.push_back(read);
                chrom_bases += static_cast<int64_t>(read.seq.size());
            }
        }
        if (chrom_reads.empty())
            continue;

        double hw_mu, hw_bq;
        {
            auto reads = chrom_reads;
            core::MetadataAccelConfig cfg;
            cfg.numPipelines = 16;
            cfg.psize = 131'072;
            auto result = core::MetadataAccelerator(cfg).run(
                reads, workload.genome);
            hw_mu = result.info.timing.total();
        }
        {
            core::BqsrAccelConfig cfg;
            cfg.numPipelines = 8;
            cfg.psize = 131'072;
            auto result = core::BqsrAccelerator(cfg).run(
                chrom_reads, workload.genome);
            hw_bq = result.info.timing.total();
        }

        double gatk_mu = bench::paperGatkSeconds(
            bench::Stage::MetadataUpdate, chrom_bases);
        double gatk_bq = bench::paperGatkSeconds(
            bench::Stage::BqsrTable, chrom_bases);
        std::printf("%-8s %9lld %8zu | %10.4f %10.4f %7.2fx | %10.4f "
                    "%10.4f %7.2fx\n",
                    chrom.name.c_str(),
                    static_cast<long long>(chrom.length()),
                    chrom_reads.size(), gatk_mu, hw_mu, gatk_mu / hw_mu,
                    gatk_bq, hw_bq, gatk_bq / hw_bq);
    }
    std::printf("* GATK baseline modelled from the paper's 8-core "
                "per-stage throughput (bench_common.h).\n"
                "paper: per-chromosome Metadata Update speedups cluster "
                "around 19x and BQSR around 12x, with smaller "
                "chromosomes slightly lower - the same downward trend "
                "toward small chromosomes should appear here as fixed "
                "per-invocation costs stop amortising.\n");
    return 0;
}

/**
 * @file
 * Ablation: fused dataflow vs decomposed (operator-at-a-time) execution.
 *
 * The paper's Related Work argues LINQits/SDA-class designs must break a
 * complex query into simple operations that communicate through main
 * memory, "which is extremely inefficient". This bench quantifies that
 * for the Metadata Update pipeline: it runs the fused design, then
 * models the decomposed alternative by charging every inter-operator
 * stream (measured flit counts from the same run) a round trip through
 * device memory at the simulated channels' bandwidth.
 */

#include "bench_common.h"

using namespace genesis;

int
main()
{
    auto workload = bench::makeBenchWorkload(bench::envPairs() / 2);
    bench::printHeader(
        "Ablation: fused dataflow vs memory-decomposed execution",
        workload);

    core::MetadataAccelConfig cfg;
    cfg.numPipelines = 16;
    cfg.psize = 131'072;
    auto reads = workload.reads;
    auto result = core::MetadataAccelerator(cfg).run(reads,
                                                     workload.genome);

    // Inter-operator streams that a decomposed design would materialise
    // in memory (everything that is a queue between compute operators in
    // Figure 11, i.e. not a memory-reader feed).
    struct Stream {
        const char *queueSuffix;
        uint32_t bytesPerFlit; // materialised record width
    };
    static const Stream kStreams[] = {
        {"bases", 8},   // ReadToBases output (pos, bp, qual, cycle)
        {"ref", 5},     // SPM-read reference stream (pos, base)
        {"joined", 9},  // joiner output
        {"join_nm", 9}, {"join_uq", 9}, {"join_md", 9},
        {"nm_mask", 10}, {"uq_noins", 9}, {"uq_mask", 10},
    };

    uint64_t spill_bytes = 0;
    for (const auto &[name, value] : result.info.stats.counters()) {
        if (name.rfind("queue.", 0) != 0 ||
            name.find(".flits") == std::string::npos) {
            continue;
        }
        for (const auto &s : kStreams) {
            if (name.find(std::string(".") + s.queueSuffix + ".") !=
                std::string::npos) {
                spill_bytes += value * s.bytesPerFlit;
            }
        }
    }
    // Each materialised stream is written once and read once.
    spill_bytes *= 2;

    const auto &mem = cfg.runtime.memory;
    double mem_bw = static_cast<double>(mem.numChannels) *
        mem.bytesPerCyclePerChannel * cfg.runtime.clockHz;
    double spill_seconds = static_cast<double>(spill_bytes) / mem_bw;
    double fused_accel = result.info.timing.accelSeconds;

    std::printf("fused pipeline accelerator time     %10.6f s "
                "(%llu cycles)\n", fused_accel,
                static_cast<unsigned long long>(result.info.totalCycles));
    std::printf("inter-operator traffic if spilled   %10s "
                "(write + read)\n",
                formatBytes(static_cast<double>(spill_bytes)).c_str());
    std::printf("added memory time when decomposed   %10.6f s "
                "(at %.1f GB/s device memory)\n", spill_seconds,
                mem_bw / 1e9);
    std::printf("decomposed / fused accelerator time %9.2fx\n",
                (fused_accel + spill_seconds) / fused_accel);
    std::printf("\nand this charges only the traffic: a decomposed "
                "design also serialises the operators and loses the "
                "SPM reuse, so the model is a lower bound on the "
                "paper's 'extremely inefficient'.\n");
    return 0;
}

/**
 * @file
 * Multi-tenant accelerator-service load bench (open-loop generator).
 *
 * Drives src/service with the bench read set's quality-sum pipeline
 * (the Mark Duplicates hardware portion, Figure 10) under an open-loop
 * load generator: Poisson arrivals, heavy-tailed (bounded-Pareto) shard
 * sizes, four tenants with weighted-fair shares. The read set is
 * pre-split into chunks whose QUAL columns are cached per board under
 * stable keys, so repeat queries skip the configure_mem DMA-in.
 *
 * Reported as one JSON array:
 *  - a "phase": "warm_cache" record — the same chunk jobs cold then
 *    warm, with per-phase DMA seconds, cache counters, and a
 *    bit-identity verdict (exit 1 when warm != cold results);
 *  - one record per offered-load point ("offered_jps" key): p50 / p99 /
 *    p999 latency (admission -> completion), goodput (completed
 *    jobs/s over the point's makespan), reject + failure counts, and
 *    cache hit rate;
 *  - a "phase": "accounting" record — per-tenant dollars must sum to
 *    the fleet total (exit 1 otherwise).
 *
 * Every job's output is checked against the host-computed golden sums
 * for its chunk (exit 1 on any mismatch) — scheduling order, board
 * placement and cache hits must never change results.
 *
 * Knobs: GENESIS_BENCH_PAIRS (workload size), GENESIS_SERVICE_JOBS
 * (jobs per load point, default 96), GENESIS_SERVICE_* (fleet shape,
 * see ServiceConfig::fromEnv), --dma pcie3|pcie4, and
 * --require-goodput X (exit 1 unless some point sustains X jobs/s).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "bench_common.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/reducer.h"
#include "service/service.h"

using namespace genesis;

namespace {

/** One pre-split shard of the read set: a cached QUAL column. */
struct Chunk {
    std::string key;
    std::vector<int64_t> qual;
    std::vector<uint32_t> qualLens;
    /** Host-computed per-read quality sums (the golden output). */
    std::vector<int64_t> golden;
};

/**
 * Split the read set into chunks with bounded-Pareto (alpha = 1.5)
 * sizes — a heavy tail: most chunks are small, a few hold a large
 * slice of the reads.
 */
std::vector<Chunk>
makeChunks(const bench::BenchWorkload &workload, size_t num_chunks)
{
    Rng rng(4242);
    const size_t n = workload.reads.size();
    const double alpha = 1.5;
    const double min_share = 0.2; // of the uniform share
    std::vector<double> sizes(num_chunks);
    double total = 0.0;
    for (auto &s : sizes) {
        // Inverse-CDF bounded Pareto, capped at 8x the uniform share.
        double u = rng.uniform();
        s = std::min(min_share / std::pow(1.0 - u, 1.0 / alpha),
                     min_share * 40.0);
        total += s;
    }

    std::vector<Chunk> chunks(num_chunks);
    size_t first = 0;
    for (size_t c = 0; c < num_chunks; ++c) {
        size_t count = static_cast<size_t>(
            sizes[c] / total * static_cast<double>(n));
        if (c + 1 == num_chunks)
            count = n - first;
        count = std::min(count, n - first);
        if (count == 0)
            count = first < n ? 1 : 0;
        Chunk &chunk = chunks[c];
        chunk.key = "reads.QUAL.chunk" + std::to_string(c);
        for (size_t r = first; r < first + count; ++r) {
            const auto &read = workload.reads[r];
            int64_t sum = 0;
            for (uint8_t q : read.qual) {
                chunk.qual.push_back(q);
                sum += q;
            }
            chunk.qualLens.push_back(
                static_cast<uint32_t>(read.qual.size()));
            chunk.golden.push_back(sum);
        }
        first += count;
    }
    return chunks;
}

/** Build fn: per-read quality sums over one chunk's cached column. */
service::JobBuild
qualSumJob(const Chunk &chunk)
{
    return [&chunk](service::JobContext &ctx) {
        auto *in =
            ctx.input(chunk.key, chunk.qual, chunk.qualLens, 1);
        auto *out = ctx.output("QSUM", 4);
        auto &sim = ctx.sim();
        auto *qual_q = sim.makeQueue("qual");
        auto *sum_q = sim.makeQueue("sum");
        modules::MemoryReaderConfig reader_cfg;
        reader_cfg.emitBoundaries = true;
        sim.make<modules::MemoryReader>("rd", in,
                                        sim.memory().makePort(0),
                                        qual_q, reader_cfg);
        modules::ReducerConfig red_cfg;
        red_cfg.op = modules::ReduceOp::Sum;
        red_cfg.granularity = modules::ReduceGranularity::PerItem;
        red_cfg.valueField = 0;
        sim.make<modules::Reducer>("sum", qual_q, sum_q, red_cfg);
        modules::MemoryWriterConfig writer_cfg;
        writer_cfg.fieldIndex = 0;
        writer_cfg.elemSizeBytes = 4;
        sim.make<modules::MemoryWriter>(
            "wr", out, sim.memory().makePort(0), sum_q, writer_cfg);
    };
}

bool
resultMatchesGolden(const service::JobResult &result, const Chunk &chunk)
{
    return result.ok && result.outputs.size() == 1 &&
        result.outputs[0].elements == chunk.golden;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

long long
envJobs()
{
    return envInt64("GENESIS_SERVICE_JOBS", 96, 1);
}

const char *kTenants[] = {"tenantA", "tenantB", "tenantC", "tenantD"};
const double kWeights[] = {1.0, 1.0, 2.0, 4.0};

service::ServiceConfig
makeServiceConfig(const runtime::DmaConfig &dma)
{
    service::ServiceConfig cfg;
    cfg.runtime.dma = dma;
    cfg = service::ServiceConfig::fromEnv(cfg);
    return cfg;
}

void
setWeights(service::AcceleratorService &svc)
{
    for (size_t t = 0; t < std::size(kTenants); ++t)
        svc.setTenantWeight(kTenants[t], kWeights[t]);
}

/** Aggregate outcome of one offered-load point. */
struct LoadPoint {
    double offeredJps = 0.0;
    size_t submitted = 0;
    size_t completed = 0;
    size_t rejected = 0;
    size_t failed = 0;
    size_t mismatches = 0;
    double makespan = 0.0;
    double p50 = 0.0, p99 = 0.0, p999 = 0.0;
    double goodput = 0.0;
    double hitRate = 0.0;
};

/**
 * Open-loop point: submit `jobs` jobs with exponential inter-arrival
 * times at `offered_jps`, never waiting for completions; collect
 * latency (admission -> completion) from the futures afterwards.
 */
LoadPoint
runLoadPoint(const service::ServiceConfig &cfg,
             const std::vector<Chunk> &chunks, double offered_jps,
             size_t jobs, uint64_t seed)
{
    service::AcceleratorService svc(cfg);
    setWeights(svc);
    Rng rng(seed);

    struct InFlight {
        std::shared_future<service::JobResult> future;
        size_t chunk = 0;
    };
    std::vector<InFlight> inflight;
    inflight.reserve(jobs);

    LoadPoint point;
    point.offeredJps = offered_jps;
    point.submitted = jobs;

    const auto start = std::chrono::steady_clock::now();
    double arrival = 0.0; // seconds since start
    for (size_t j = 0; j < jobs; ++j) {
        arrival += -std::log(1.0 - rng.uniform()) / offered_jps;
        std::this_thread::sleep_until(
            start + std::chrono::duration<double>(arrival));
        const size_t c = rng.below(chunks.size());
        service::JobRequest req;
        req.tenant = kTenants[rng.below(std::size(kTenants))];
        req.costHint = static_cast<double>(chunks[c].qual.size());
        req.build = qualSumJob(chunks[c]);
        service::Admission admission = svc.submit(std::move(req));
        if (admission.accepted)
            inflight.push_back({admission.result, c});
        else
            ++point.rejected;
    }
    svc.drain();
    point.makespan = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    std::vector<double> latencies;
    latencies.reserve(inflight.size());
    for (const auto &job : inflight) {
        service::JobResult result = job.future.get();
        if (!result.ok) {
            ++point.failed;
            continue;
        }
        if (!resultMatchesGolden(result, chunks[job.chunk])) {
            ++point.mismatches;
            continue;
        }
        ++point.completed;
        latencies.push_back(result.queueSeconds +
                            result.serviceSeconds);
    }
    std::sort(latencies.begin(), latencies.end());
    point.p50 = percentile(latencies, 0.50);
    point.p99 = percentile(latencies, 0.99);
    point.p999 = percentile(latencies, 0.999);
    point.goodput = point.makespan > 0
        ? static_cast<double>(point.completed) / point.makespan
        : 0.0;
    auto cache = svc.cacheStats();
    point.hitRate = cache.hits + cache.misses > 0
        ? static_cast<double>(cache.hits) /
            static_cast<double>(cache.hits + cache.misses)
        : 0.0;
    svc.stop();
    return point;
}

const char *
argValue(int argc, char **argv, const char *flag)
{
    const size_t flag_len = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], flag, flag_len) == 0 &&
            argv[i][flag_len] == '=')
            return argv[i] + flag_len + 1;
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc)
            return argv[i + 1];
    }
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *dma_arg = argValue(argc, argv, "--dma");
    const runtime::DmaConfig dma = runtime::DmaConfig::fromName(
        dma_arg ? dma_arg : "pcie3");
    const char *goodput_arg = argValue(argc, argv, "--require-goodput");
    const double require_goodput =
        goodput_arg ? std::atof(goodput_arg) : 0.0;

    auto workload = bench::makeBenchWorkload();
    bench::printHeader("multi-tenant accelerator service (open loop)",
                       workload);
    service::ServiceConfig cfg = makeServiceConfig(dma);
    const int total_slots = cfg.numBoards * cfg.slotsPerBoard;
    std::printf("fleet: %d boards x %d slots, queue %zu, dma %s\n\n",
                cfg.numBoards, cfg.slotsPerBoard, cfg.queueCapacity,
                dma.name.c_str());

    constexpr size_t kChunks = 16;
    std::vector<Chunk> chunks = makeChunks(workload, kChunks);
    bool ok = true;

    std::printf("[\n");

    // --- Warm-cache phase: every chunk cold, then every chunk warm ----
    // One board: per-board caches mean a multi-board fleet would land
    // some warm jobs on a board that never saw the chunk.
    double cold_dma = 0.0, warm_dma = 0.0;
    {
        service::ServiceConfig warm_cfg = cfg;
        warm_cfg.numBoards = 1;
        service::AcceleratorService svc(warm_cfg);
        setWeights(svc);
        bool waves_identical = true;
        auto run_wave = [&](double *dma_seconds) {
            std::vector<std::shared_future<service::JobResult>> wave;
            for (size_t c = 0; c < chunks.size(); ++c) {
                service::JobRequest req;
                req.tenant = kTenants[c % std::size(kTenants)];
                req.build = qualSumJob(chunks[c]);
                auto admission = svc.submit(std::move(req));
                if (admission.accepted)
                    wave.push_back(admission.result);
            }
            svc.drain();
            for (size_t c = 0; c < wave.size(); ++c) {
                service::JobResult result = wave[c].get();
                if (!resultMatchesGolden(result, chunks[c]))
                    waves_identical = false;
                *dma_seconds += result.timing.dmaSeconds;
            }
        };
        run_wave(&cold_dma);
        run_wave(&warm_dma);
        auto cache = svc.cacheStats();
        // Warm jobs flush outputs back over DMA but never DMA inputs
        // in: their total DMA must be well under the cold wave's. With
        // the cache explicitly disabled (GENESIS_SERVICE_NO_CACHE) the
        // warm wave re-DMAs everything, so only correctness is gated.
        const bool dma_drops = warm_dma < cold_dma;
        if (!waves_identical)
            ok = false;
        if (warm_cfg.enableCache &&
            (!dma_drops || cache.hits < chunks.size()))
            ok = false;
        std::printf(
            "  {\"phase\": \"warm_cache\", \"chunks\": %zu, "
            "\"cache_enabled\": %s, "
            "\"cold_dma_seconds\": %.6f, \"warm_dma_seconds\": %.6f, "
            "\"cache_hits\": %llu, \"cache_misses\": %llu, "
            "\"bit_identical\": %s, \"dma_drops_when_warm\": %s},\n",
            chunks.size(), warm_cfg.enableCache ? "true" : "false",
            cold_dma, warm_dma,
            static_cast<unsigned long long>(cache.hits),
            static_cast<unsigned long long>(cache.misses),
            waves_identical ? "true" : "false",
            dma_drops ? "true" : "false");
        svc.stop();
    }

    // --- Calibrate the fleet's service rate ---------------------------
    double mean_service = 0.0;
    {
        service::AcceleratorService svc(cfg);
        size_t measured = 0;
        for (size_t c = 0; c < chunks.size(); ++c) {
            service::JobRequest req;
            req.build = qualSumJob(chunks[c]);
            auto result = svc.submit(std::move(req)).result.get();
            if (result.ok) {
                mean_service += result.serviceSeconds;
                ++measured;
            }
        }
        mean_service = measured ? mean_service / measured : 0.01;
        svc.stop();
    }
    const double capacity_jps =
        mean_service > 0 ? total_slots / mean_service : 100.0;
    std::printf("  {\"phase\": \"calibration\", "
                "\"mean_service_seconds\": %.6f, "
                "\"capacity_jps\": %.2f},\n",
                mean_service, capacity_jps);

    // --- Offered-load sweep -------------------------------------------
    const size_t jobs = static_cast<size_t>(envJobs());
    const double load_factors[] = {0.25, 0.5, 1.0, 2.0};
    double best_goodput = 0.0;
    for (size_t i = 0; i < std::size(load_factors); ++i) {
        LoadPoint point =
            runLoadPoint(cfg, chunks, load_factors[i] * capacity_jps,
                         jobs, 1000 + i);
        if (point.mismatches > 0 || point.failed > 0)
            ok = false;
        best_goodput = std::max(best_goodput, point.goodput);
        std::printf(
            "  {\"offered_jps\": %.2f, \"load_factor\": %.2f, "
            "\"jobs\": %zu, \"completed\": %zu, \"rejected\": %zu, "
            "\"failed\": %zu, \"mismatches\": %zu, "
            "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"p999_ms\": %.2f, "
            "\"goodput_jps\": %.2f, \"makespan_seconds\": %.3f, "
            "\"cache_hit_rate\": %.3f},\n",
            point.offeredJps, load_factors[i], point.submitted,
            point.completed, point.rejected, point.failed,
            point.mismatches, point.p50 * 1e3, point.p99 * 1e3,
            point.p999 * 1e3, point.goodput, point.makespan,
            point.hitRate);
    }

    // --- Accounting: per-tenant dollars sum to the fleet total --------
    {
        service::AcceleratorService svc(cfg);
        setWeights(svc);
        Rng rng(77);
        std::vector<std::shared_future<service::JobResult>> futures;
        for (size_t j = 0; j < 32; ++j) {
            const size_t c = rng.below(chunks.size());
            service::JobRequest req;
            req.tenant = kTenants[rng.below(std::size(kTenants))];
            req.costHint = static_cast<double>(chunks[c].qual.size());
            req.build = qualSumJob(chunks[c]);
            auto admission = svc.submit(std::move(req));
            if (admission.accepted)
                futures.push_back(admission.result);
        }
        for (auto &f : futures)
            f.get();
        svc.drain();
        double tenant_dollars = 0.0, tenant_accel = 0.0;
        for (const auto &usage : svc.usage()) {
            tenant_dollars += usage.dollars;
            tenant_accel += usage.accelSeconds;
        }
        const double fleet_dollars = svc.fleetDollars();
        const double rel = fleet_dollars > 0
            ? std::fabs(tenant_dollars - fleet_dollars) / fleet_dollars
            : 0.0;
        const bool balanced = rel < 1e-9;
        if (!balanced)
            ok = false;
        std::printf("  {\"phase\": \"accounting\", "
                    "\"tenant_dollars\": %.9f, "
                    "\"fleet_dollars\": %.9f, "
                    "\"fleet_accel_seconds\": %.6f, "
                    "\"tenant_accel_seconds\": %.6f, "
                    "\"balanced\": %s}\n",
                    tenant_dollars, fleet_dollars,
                    svc.fleetAccelSeconds(), tenant_accel,
                    balanced ? "true" : "false");
        svc.stop();
    }
    std::printf("]\n");

    if (require_goodput > 0 && best_goodput < require_goodput) {
        std::fprintf(stderr,
                     "FAIL: best goodput %.2f jobs/s below required "
                     "%.2f\n",
                     best_goodput, require_goodput);
        return 1;
    }
    if (!ok) {
        std::fprintf(stderr,
                     "FAIL: mismatched results, failed jobs, or "
                     "unbalanced accounting (see records)\n");
        return 1;
    }
    std::printf("\nall jobs bit-identical to host goldens; accounting "
                "balanced\n");
    return 0;
}

/**
 * @file
 * Memory-model bandwidth microbench.
 *
 * Drives the MemorySystem directly (no pipeline modules) with four
 * address-stream shapes and reports the effective bandwidth each
 * sustains, making the DRAM model's row/bank/interleave effects visible
 * as numbers CI can trend:
 *
 *  - "streaming":           aligned sequential reads, full granules
 *  - "streaming_unaligned": the same stream shifted +13 B, exercising
 *                           boundary splitting and tail/head coalescing
 *  - "strided":             row-granular stride, defeating the open-row
 *                           buffer (every access is a row miss)
 *  - "gather":              small unaligned reads at LCG-scattered
 *                           addresses, the markdup/BQSR gather shape
 *
 * Each pattern issues the same byte volume through the same number of
 * ports, so bytes/cycle is directly comparable across rows. Output is
 * one JSON object per line; pass `--out <path>` to also write the lines
 * to a file (CI uploads it as an artifact). Scale the per-pattern byte
 * volume with GENESIS_MEMBW_BYTES (default 1 MiB).
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/env.h"
#include "sim/memory.h"

using namespace genesis;

namespace {

/** Next request of one synthetic address stream. */
struct Request {
    uint64_t addr = 0;
    uint32_t bytes = 0;
};

/** Stateful generator for one port's share of a pattern. */
class Stream
{
  public:
    enum class Kind { Streaming, StreamingUnaligned, Strided, Gather };

    Stream(Kind kind, int port_index, uint64_t budget_bytes,
           const sim::MemoryConfig &cfg)
        : kind_(kind), remaining_(budget_bytes),
          // Disjoint 64 MiB regions keep ports from aliasing rows; the
          // extra row of skew starts each port on a different bank so
          // lockstep streams don't close each other's open rows.
          base_((static_cast<uint64_t>(port_index) << 26) +
                static_cast<uint64_t>(port_index) * cfg.rowBytes *
                    static_cast<uint64_t>(cfg.numChannels)),
          rowStride_(static_cast<uint64_t>(cfg.rowBytes) *
                     static_cast<uint64_t>(cfg.numChannels)),
          lcg_(0x9e3779b97f4a7c15ull + static_cast<uint64_t>(port_index))
    {
    }

    bool exhausted() const { return remaining_ == 0; }

    Request
    next()
    {
        Request r;
        switch (kind_) {
          case Kind::Streaming:
            r.addr = base_ + offset_;
            r.bytes = static_cast<uint32_t>(
                std::min<uint64_t>(64, remaining_));
            offset_ += r.bytes;
            break;
          case Kind::StreamingUnaligned:
            r.addr = base_ + offset_ + 13;
            r.bytes = static_cast<uint32_t>(
                std::min<uint64_t>(64, remaining_));
            offset_ += r.bytes;
            break;
          case Kind::Strided:
            // One granule per row: every access opens a fresh row.
            r.addr = base_ + offset_;
            r.bytes = static_cast<uint32_t>(
                std::min<uint64_t>(64, remaining_));
            offset_ += rowStride_;
            break;
          case Kind::Gather:
            lcg_ = lcg_ * 6364136223846793005ull +
                1442695040888963407ull;
            // Scattered unaligned reads inside a 32 MiB footprint.
            r.addr = base_ + ((lcg_ >> 16) & ((32ull << 20) - 1));
            r.bytes = static_cast<uint32_t>(
                std::min<uint64_t>(16, remaining_));
            break;
        }
        remaining_ -= r.bytes;
        return r;
    }

  private:
    Kind kind_;
    uint64_t remaining_;
    uint64_t base_;
    uint64_t offset_ = 0;
    uint64_t rowStride_;
    uint64_t lcg_;
};

/** Run one pattern to completion and emit its JSON line. */
std::string
runPattern(const char *name, Stream::Kind kind, uint64_t total_bytes,
           int num_ports)
{
    sim::MemoryConfig cfg;
    sim::MemorySystem mem(cfg);
    std::vector<sim::MemoryPort *> ports;
    std::vector<Stream> streams;
    for (int p = 0; p < num_ports; ++p) {
        ports.push_back(mem.makePort(p));
        streams.emplace_back(kind, p,
                             total_bytes / static_cast<uint64_t>(
                                 num_ports), cfg);
    }

    uint64_t issued = 0;
    bool all_exhausted = false;
    while (!all_exhausted || !mem.idle()) {
        all_exhausted = true;
        for (int p = 0; p < num_ports; ++p) {
            while (!streams[static_cast<size_t>(p)].exhausted() &&
                   ports[static_cast<size_t>(p)]->canIssue()) {
                Request r = streams[static_cast<size_t>(p)].next();
                ports[static_cast<size_t>(p)]->issue(r.addr, r.bytes,
                                                     false);
                issued += r.bytes;
            }
            if (!streams[static_cast<size_t>(p)].exhausted())
                all_exhausted = false;
        }
        mem.tick();
        for (auto *port : ports)
            port->takeCompletedReadBytes();
    }
    mem.assertStatInvariant();

    uint64_t cycles = mem.cycle();
    uint64_t ch_min = ~0ull, ch_max = 0;
    for (int ch = 0; ch < cfg.numChannels; ++ch) {
        uint64_t b = mem.channelBytes(ch);
        ch_min = std::min(ch_min, b);
        ch_max = std::max(ch_max, b);
    }
    const auto &stats = mem.stats();
    char line[640];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\": \"sim_membw\", \"pattern\": \"%s\", "
        "\"bytes\": %" PRIu64 ", \"cycles\": %" PRIu64 ", "
        "\"bytes_per_cycle\": %.3f, "
        "\"sub_requests\": %" PRIu64 ", "
        "\"coalesced_sub_requests\": %" PRIu64 ", "
        "\"row_hits\": %" PRIu64 ", \"row_misses\": %" PRIu64 ", "
        "\"bank_conflict_cycles\": %" PRIu64 ", "
        "\"channel_busy_cycles\": %" PRIu64 ", "
        "\"channel_idle_cycles\": %" PRIu64 ", "
        "\"channel_bytes_min\": %" PRIu64 ", "
        "\"channel_bytes_max\": %" PRIu64 "}",
        name, issued, cycles,
        cycles ? static_cast<double>(issued) /
                static_cast<double>(cycles) : 0.0,
        stats.get("sub_requests"), stats.get("coalesced_sub_requests"),
        stats.get("row_hits"), stats.get("row_misses"),
        stats.get("bank_conflict_cycles"),
        stats.get("channel_busy_cycles"),
        stats.get("channel_idle_cycles"), ch_min, ch_max);
    return std::string(line);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--out results.json]\n",
                         argv[0]);
            return 2;
        }
    }

    uint64_t total_bytes = static_cast<uint64_t>(
        envInt64("GENESIS_MEMBW_BYTES", 1ll << 20, 1));

    const int kPorts = 4;
    std::vector<std::string> lines;
    lines.push_back(runPattern("streaming", Stream::Kind::Streaming,
                               total_bytes, kPorts));
    lines.push_back(runPattern("streaming_unaligned",
                               Stream::Kind::StreamingUnaligned,
                               total_bytes, kPorts));
    lines.push_back(runPattern("strided", Stream::Kind::Strided,
                               total_bytes, kPorts));
    lines.push_back(runPattern("gather", Stream::Kind::Gather,
                               total_bytes, kPorts));

    for (const auto &line : lines)
        std::printf("%s\n", line.c_str());
    if (out_path) {
        std::FILE *f = std::fopen(out_path, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", out_path);
            return 1;
        }
        for (const auto &line : lines)
            std::fprintf(f, "%s\n", line.c_str());
        std::fclose(f);
    }
    return 0;
}

/**
 * @file
 * Memory-model bandwidth microbench.
 *
 * Drives the MemorySystem directly (no pipeline modules) with four
 * address-stream shapes and reports the effective bandwidth each
 * sustains, making the DRAM model's row/bank/interleave effects visible
 * as numbers CI can trend:
 *
 *  - "streaming":           aligned sequential reads, full granules
 *  - "streaming_unaligned": the same stream shifted +13 B, exercising
 *                           boundary splitting and tail/head coalescing
 *  - "strided":             row-granular stride, defeating the open-row
 *                           buffer (every access is a row miss)
 *  - "gather":              small unaligned reads at LCG-scattered
 *                           addresses, the markdup/BQSR gather shape
 *
 * Each pattern runs under two drivers and asserts they agree bit-exactly:
 *
 *  - "percycle":  issue-fill, tick, drain — one tick per simulated cycle
 *                 (the reference driver).
 *  - "eventjump": the same loop, but after each tick the driver asks
 *                 nextEventCycle() for the next cycle the memory system
 *                 can change state and skips the proven-quiet span with
 *                 tickQuiet(). Issue opportunities only open on
 *                 retirements — which are events — so the two drivers
 *                 issue at identical cycles and finish with identical
 *                 cycle counts, stats and per-channel byte totals; the
 *                 jump driver just spends no host time on no-op ticks.
 *
 * The main per-pattern JSON line reports both wall clocks and their
 * ratio ("evjump_speedup"); `--require-speedup X` exits non-zero when
 * the streaming pattern's ratio lands below X (the CI floor). A second
 * set of lines sweeps the channel-parallel memory tick
 * (setMemThreads 1/2/4) under the event-jump driver, asserting
 * bit-identity and reporting per-point wall clocks that
 * scripts/check_perf.py records as sim_membw.memthreads{N}.
 *
 * Each pattern issues the same byte volume through the same number of
 * ports, so bytes/cycle is directly comparable across rows. Output is
 * one JSON object per line; pass `--out <path>` to also write the lines
 * to a file (CI uploads it as an artifact). Scale the per-pattern byte
 * volume with GENESIS_MEMBW_BYTES (default 1 MiB).
 */

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "base/env.h"
#include "base/logging.h"
#include "sim/memory.h"

using namespace genesis;

namespace {

/** Next request of one synthetic address stream. */
struct Request {
    uint64_t addr = 0;
    uint32_t bytes = 0;
};

/** Stateful generator for one port's share of a pattern. */
class Stream
{
  public:
    enum class Kind { Streaming, StreamingUnaligned, Strided, Gather };

    Stream(Kind kind, int port_index, uint64_t budget_bytes,
           const sim::MemoryConfig &cfg)
        : kind_(kind), remaining_(budget_bytes),
          // Disjoint 64 MiB regions keep ports from aliasing rows; the
          // extra row of skew starts each port on a different bank so
          // lockstep streams don't close each other's open rows.
          base_((static_cast<uint64_t>(port_index) << 26) +
                static_cast<uint64_t>(port_index) * cfg.rowBytes *
                    static_cast<uint64_t>(cfg.numChannels)),
          rowStride_(static_cast<uint64_t>(cfg.rowBytes) *
                     static_cast<uint64_t>(cfg.numChannels)),
          lcg_(0x9e3779b97f4a7c15ull + static_cast<uint64_t>(port_index))
    {
    }

    bool exhausted() const { return remaining_ == 0; }

    Request
    next()
    {
        Request r;
        switch (kind_) {
          case Kind::Streaming:
            r.addr = base_ + offset_;
            r.bytes = static_cast<uint32_t>(
                std::min<uint64_t>(64, remaining_));
            offset_ += r.bytes;
            break;
          case Kind::StreamingUnaligned:
            r.addr = base_ + offset_ + 13;
            r.bytes = static_cast<uint32_t>(
                std::min<uint64_t>(64, remaining_));
            offset_ += r.bytes;
            break;
          case Kind::Strided:
            // One granule per row: every access opens a fresh row.
            r.addr = base_ + offset_;
            r.bytes = static_cast<uint32_t>(
                std::min<uint64_t>(64, remaining_));
            offset_ += rowStride_;
            break;
          case Kind::Gather:
            lcg_ = lcg_ * 6364136223846793005ull +
                1442695040888963407ull;
            // Scattered unaligned reads inside a 32 MiB footprint.
            r.addr = base_ + ((lcg_ >> 16) & ((32ull << 20) - 1));
            r.bytes = static_cast<uint32_t>(
                std::min<uint64_t>(16, remaining_));
            break;
        }
        remaining_ -= r.bytes;
        return r;
    }

  private:
    Kind kind_;
    uint64_t remaining_;
    uint64_t base_;
    uint64_t offset_ = 0;
    uint64_t rowStride_;
    uint64_t lcg_;
};

/** Everything one driver run produces, for cross-mode comparison. */
struct RunResult {
    uint64_t issued = 0;
    uint64_t cycles = 0;
    std::map<std::string, uint64_t> stats;
    std::vector<uint64_t> channelBytes;
    double wallSeconds = 0.0;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Drive one pattern to completion.
 * @param event_jump skip proven-quiet spans with tickQuiet()
 * @param mem_threads channel-parallel tick budget (1 = sequential)
 */
RunResult
runOnce(Stream::Kind kind, uint64_t total_bytes, int num_ports,
        bool event_jump, int mem_threads)
{
    sim::MemoryConfig cfg;
    sim::MemorySystem mem(cfg);
    mem.setMemThreads(mem_threads);
    std::vector<sim::MemoryPort *> ports;
    std::vector<Stream> streams;
    for (int p = 0; p < num_ports; ++p) {
        ports.push_back(mem.makePort(p));
        streams.emplace_back(kind, p,
                             total_bytes / static_cast<uint64_t>(
                                 num_ports), cfg);
    }

    auto start = std::chrono::steady_clock::now();
    RunResult res;
    bool all_exhausted = false;
    while (!all_exhausted || !mem.idle()) {
        all_exhausted = true;
        for (int p = 0; p < num_ports; ++p) {
            while (!streams[static_cast<size_t>(p)].exhausted() &&
                   ports[static_cast<size_t>(p)]->canIssue()) {
                Request r = streams[static_cast<size_t>(p)].next();
                ports[static_cast<size_t>(p)]->issue(r.addr, r.bytes,
                                                     false);
                res.issued += r.bytes;
            }
            if (!streams[static_cast<size_t>(p)].exhausted())
                all_exhausted = false;
        }
        mem.tick();
        for (auto *port : ports)
            port->takeCompletedReadBytes();
        if (!event_jump)
            continue;
        // Issue credit only opens on a retirement, which is an event, so
        // every tick strictly before nextEventCycle() would re-run this
        // loop body with nothing to do. Skip the span; tickQuiet credits
        // the skipped ticks' stats bit-exactly.
        uint64_t next = mem.nextEventCycle();
        if (next != sim::MemorySystem::kNoEvent &&
            next > mem.cycle() + 1) {
            mem.tickQuiet(next - mem.cycle() - 1);
        }
    }
    mem.assertStatInvariant();
    res.wallSeconds = secondsSince(start);

    res.cycles = mem.cycle();
    res.stats = mem.stats().counters();
    for (int ch = 0; ch < cfg.numChannels; ++ch)
        res.channelBytes.push_back(mem.channelBytes(ch));
    return res;
}

/** Die loudly if two driver runs of one pattern diverged anywhere. */
void
assertIdentical(const char *name, const char *what, const RunResult &a,
                const RunResult &b)
{
    if (a.issued != b.issued || a.cycles != b.cycles ||
        a.stats != b.stats || a.channelBytes != b.channelBytes) {
        fatal("sim_membw %s: %s diverged from the per-cycle reference "
              "(cycles %" PRIu64 " vs %" PRIu64 ")",
              name, what, b.cycles, a.cycles);
    }
}

/** Run one pattern under both drivers and emit its JSON line. */
std::string
runPattern(const char *name, Stream::Kind kind, uint64_t total_bytes,
           int num_ports, double *streaming_speedup)
{
    RunResult ref =
        runOnce(kind, total_bytes, num_ports, /*event_jump=*/false, 1);
    RunResult jump =
        runOnce(kind, total_bytes, num_ports, /*event_jump=*/true, 1);
    assertIdentical(name, "event-jump driver", ref, jump);

    uint64_t ch_min = ~0ull, ch_max = 0;
    for (uint64_t b : ref.channelBytes) {
        ch_min = std::min(ch_min, b);
        ch_max = std::max(ch_max, b);
    }
    double speedup = jump.wallSeconds > 0.0
        ? ref.wallSeconds / jump.wallSeconds : 0.0;
    if (streaming_speedup && std::strcmp(name, "streaming") == 0)
        *streaming_speedup = speedup;

    auto stat = [&ref](const char *key) {
        auto it = ref.stats.find(key);
        return it == ref.stats.end() ? uint64_t(0) : it->second;
    };
    char line[832];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\": \"sim_membw\", \"pattern\": \"%s\", "
        "\"bytes\": %" PRIu64 ", \"cycles\": %" PRIu64 ", "
        "\"bytes_per_cycle\": %.3f, "
        "\"sub_requests\": %" PRIu64 ", "
        "\"coalesced_sub_requests\": %" PRIu64 ", "
        "\"row_hits\": %" PRIu64 ", \"row_misses\": %" PRIu64 ", "
        "\"bank_conflict_cycles\": %" PRIu64 ", "
        "\"channel_busy_cycles\": %" PRIu64 ", "
        "\"channel_idle_cycles\": %" PRIu64 ", "
        "\"channel_bytes_min\": %" PRIu64 ", "
        "\"channel_bytes_max\": %" PRIu64 ", "
        "\"channel_imbalance\": %.4f, "
        "\"percycle_wall_seconds\": %.4f, "
        "\"evjump_wall_seconds\": %.4f, "
        "\"evjump_speedup\": %.2f}",
        name, ref.issued, ref.cycles,
        ref.cycles ? static_cast<double>(ref.issued) /
                static_cast<double>(ref.cycles) : 0.0,
        stat("sub_requests"), stat("coalesced_sub_requests"),
        stat("row_hits"), stat("row_misses"),
        stat("bank_conflict_cycles"), stat("channel_busy_cycles"),
        stat("channel_idle_cycles"), ch_min, ch_max,
        ch_min ? static_cast<double>(ch_max) /
                static_cast<double>(ch_min) : 0.0,
        ref.wallSeconds, jump.wallSeconds, speedup);
    return std::string(line);
}

/** Sweep the channel-parallel tick on the streaming pattern. */
void
runMemThreadSweep(uint64_t total_bytes, int num_ports,
                  std::vector<std::string> *lines)
{
    RunResult ref = runOnce(Stream::Kind::Streaming, total_bytes,
                            num_ports, /*event_jump=*/true, 1);
    for (int n : {1, 2, 4}) {
        RunResult r = runOnce(Stream::Kind::Streaming, total_bytes,
                              num_ports, /*event_jump=*/true, n);
        assertIdentical("streaming", "mem-thread sweep", ref, r);
        char line[256];
        std::snprintf(
            line, sizeof(line),
            "{\"bench\": \"sim_membw\", \"pattern\": \"streaming\", "
            "\"mem_threads\": %d, \"wall_seconds\": %.4f, "
            "\"identical\": true}",
            n, r.wallSeconds);
        lines->push_back(line);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = nullptr;
    double require_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--require-speedup") == 0 &&
                   i + 1 < argc) {
            require_speedup = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out results.json] "
                         "[--require-speedup X]\n", argv[0]);
            return 2;
        }
    }

    uint64_t total_bytes = static_cast<uint64_t>(
        envInt64("GENESIS_MEMBW_BYTES", 1ll << 20, 1));

    const int kPorts = 4;
    double streaming_speedup = 0.0;
    std::vector<std::string> lines;
    lines.push_back(runPattern("streaming", Stream::Kind::Streaming,
                               total_bytes, kPorts,
                               &streaming_speedup));
    lines.push_back(runPattern("streaming_unaligned",
                               Stream::Kind::StreamingUnaligned,
                               total_bytes, kPorts, nullptr));
    lines.push_back(runPattern("strided", Stream::Kind::Strided,
                               total_bytes, kPorts, nullptr));
    lines.push_back(runPattern("gather", Stream::Kind::Gather,
                               total_bytes, kPorts, nullptr));
    runMemThreadSweep(total_bytes, kPorts, &lines);

    for (const auto &line : lines)
        std::printf("%s\n", line.c_str());
    if (out_path) {
        std::FILE *f = std::fopen(out_path, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", out_path);
            return 1;
        }
        for (const auto &line : lines)
            std::fprintf(f, "%s\n", line.c_str());
        std::fclose(f);
    }
    if (require_speedup > 0.0 && streaming_speedup < require_speedup) {
        std::fprintf(stderr,
                     "sim_membw: streaming event-jump speedup %.2fx "
                     "below required %.2fx\n",
                     streaming_speedup, require_speedup);
        return 1;
    }
    return 0;
}

/**
 * @file
 * Table IV reproduction: FPGA resource usage of the three Genesis
 * accelerators on the VU9P, from the calibrated resource model over each
 * accelerator's hardware census (16/16/8 pipelines). Also evaluates the
 * paper's time-multiplexing suggestion: all three accelerators resident
 * on one FPGA simultaneously.
 */

#include <cstdio>

#include "core/bqsr_accel.h"
#include "core/markdup_accel.h"
#include "core/metadata_accel.h"
#include "pipeline/resource_model.h"

using namespace genesis;

namespace {

void
printBlock(const char *name, const pipeline::ResourceUsage &usage,
           double paper_luts_k, double paper_regs_k, double paper_bram)
{
    std::printf("%s\n", usage.str(name).c_str());
    std::printf("  (paper: %0.0fK LUTs, %0.0fK registers, %.2f MB "
                "BRAM)\n\n", paper_luts_k, paper_regs_k, paper_bram);
}

} // namespace

int
main()
{
    std::printf("Table IV: FPGA resource usage of Genesis "
                "(model vs paper place-and-route)\n\n");

    auto md = core::MarkDupAccelerator::census(16);
    auto mu = core::MetadataAccelerator::census(16);
    auto bq = core::BqsrAccelerator::census(8);

    printBlock("Mark Duplicates (16 pipelines)",
               pipeline::estimateResources(md), 228, 272, 0.34);
    printBlock("Metadata Update (16 pipelines)",
               pipeline::estimateResources(mu), 333, 424, 4.95);
    printBlock("Base Quality Score Recalibration (8 pipelines)",
               pipeline::estimateResources(bq), 502, 257, 1.69);

    // The paper notes the accelerators under-utilise the FPGA and
    // suggests placing several in one image to time-multiplex without
    // reprogramming. Check whether all three fit together.
    pipeline::HardwareCensus all;
    all.merge(md);
    all.merge(mu);
    all.merge(bq);
    auto combined = pipeline::estimateResources(all);
    std::printf("%s", combined
                .str("All three accelerators in one image "
                     "(time-multiplexing check)").c_str());
    auto fits = [](const pipeline::ResourceUsage &usage) {
        return usage.lutUtilization() < 100.0 &&
            usage.registerUtilization() < 100.0 &&
            usage.bramUtilization() < 100.0;
    };
    std::printf("  -> %s\n", fits(combined)
                ? "fits: one FPGA image can host all three stages"
                : "does not fit at full pipeline counts");
    if (!fits(combined)) {
        pipeline::HardwareCensus halved;
        halved.merge(core::MarkDupAccelerator::census(8));
        halved.merge(core::MetadataAccelerator::census(8));
        halved.merge(core::BqsrAccelerator::census(4));
        auto reduced = pipeline::estimateResources(halved);
        std::printf("\n%s", reduced
                    .str("All three at half pipeline counts (8/8/4)")
                    .c_str());
        std::printf("  -> %s\n", fits(reduced)
                    ? "fits: time-multiplexing works at reduced "
                      "parallelism, as the paper's under-utilisation "
                      "argument suggests"
                    : "still does not fit");
    }
    return 0;
}

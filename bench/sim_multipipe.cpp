/**
 * @file
 * Concurrent multi-pipeline scaling bench (BatchRunner + lane-sharded
 * simulator).
 *
 * Two sweeps over the bench read set's quality-sum pipeline (the Mark
 * Duplicates hardware portion, Figure 10), both reported in one JSON
 * array:
 *
 *  1. Lane sweep (records with a "lanes" key): shards the workload into
 *     a fixed number of shards and sweeps the number of concurrent
 *     BatchRunner pipeline slots: 1, 2, 4, 8. Session-level
 *     parallelism — each slot is its own AcceleratorSession on its own
 *     host thread.
 *  2. Thread sweep (records with a "threads" key): builds ONE session
 *     holding all shards as lanes of a single simulator and sweeps
 *     RuntimeConfig::simThreads — the lane-sharded parallel scheduler
 *     (sim/parallel.h). Reports speedup vs the 1-thread point, parallel
 *     efficiency (speedup / workers actually used), and a bit-identity
 *     verdict: per-read sums, total simulated cycles, and the full
 *     collectStats() signature must match the 1-thread run exactly
 *     (exit 1 on mismatch).
 *
 * Wall-clock scaling requires host cores — the report includes
 * hardware_concurrency and workers_used so single-core results are
 * interpretable. GENESIS_SIM_THREADS overrides every thread-sweep
 * point, collapsing the sweep; unset it when benchmarking.
 *
 * Scale the workload with GENESIS_BENCH_PAIRS. Override the thread
 * sweep with --threads N[,N...].
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/reducer.h"
#include "pipeline/builder.h"
#include "runtime/batch.h"

using namespace genesis;

namespace {

constexpr size_t kShards = 8;

/** Wire one Figure-10 quality-sum pipeline into a shard's session. */
void
buildQualSumPipeline(runtime::AcceleratorSession &session, size_t shard,
                     std::vector<int64_t> qual,
                     std::vector<uint32_t> qual_lens)
{
    pipeline::PipelineBuilder builder(session.sim(),
                                      static_cast<int>(shard));
    modules::ColumnBuffer *qual_buf = session.configureMem(
        builder.scopedName("READS.QUAL"), std::move(qual),
        std::move(qual_lens), 1);
    auto *qual_q = builder.queue("qual");
    auto *sum_q = builder.queue("sum");
    modules::ColumnBuffer *out =
        session.configureOutput(builder.scopedName("QSUM"), 4);

    modules::MemoryReaderConfig reader_cfg;
    reader_cfg.emitBoundaries = true;
    builder.add<modules::MemoryReader>("MemoryReader", "rd_qual",
                                       qual_buf, builder.port(), qual_q,
                                       reader_cfg);

    modules::ReducerConfig red_cfg;
    red_cfg.op = modules::ReduceOp::Sum;
    red_cfg.granularity = modules::ReduceGranularity::PerItem;
    red_cfg.valueField = 0;
    builder.add<modules::Reducer>("ReducerWide", "sum", qual_q, sum_q,
                                  red_cfg);

    modules::MemoryWriterConfig writer_cfg;
    writer_cfg.fieldIndex = 0;
    writer_cfg.elemSizeBytes = 4;
    builder.add<modules::MemoryWriter>("MemoryWriter", "wr_sum", out,
                                       builder.port(), sum_q,
                                       writer_cfg);
}

/** One sweep point: run kShards shards over `lanes` concurrent slots. */
runtime::BatchStats
runPoint(const bench::BenchWorkload &workload, int lanes,
         std::vector<int64_t> &sums)
{
    size_t n = workload.reads.size();
    size_t per = (n + kShards - 1) / kShards;
    std::vector<std::pair<size_t, size_t>> chunks;
    for (size_t s = 0; s < kShards; ++s) {
        size_t first = std::min(n, s * per);
        size_t last = std::min(n, first + per);
        if (first < last)
            chunks.emplace_back(first, last);
    }
    sums.assign(n, 0);

    runtime::BatchConfig cfg;
    cfg.numLanes = lanes;
    runtime::BatchRunner runner(cfg);
    return runner.run(
        chunks.size(),
        [&](size_t shard, runtime::AcceleratorSession &session) {
            auto [first, last] = chunks[shard];
            core::ReadColumns cols = core::ReadColumns::fromRange(
                workload.reads, first, last);
            buildQualSumPipeline(session, shard, std::move(cols.qual),
                                 std::move(cols.qualLens));
        },
        [&](size_t shard, runtime::AcceleratorSession &session) {
            auto [first, last] = chunks[shard];
            std::string out_name = "p";
            out_name += std::to_string(shard);
            out_name += ".QSUM";
            const modules::ColumnBuffer *flushed =
                session.flush(out_name);
            for (size_t i = 0; i < flushed->elements.size(); ++i)
                sums[first + i] = flushed->elements[i];
        });
}

/** Everything a threaded sweep point must reproduce bit-for-bit. */
struct ThreadedResult {
    std::vector<int64_t> sums;
    uint64_t cycles = 0;
    /** Serialized name=value view of Simulator::collectStats(). */
    std::string statsSig;
    double wallSeconds = 0.0;
    int workersUsed = 1;
};

/**
 * One thread-sweep point: all kShards pipelines as lanes of a single
 * session's simulator, run with `threads` requested workers.
 */
ThreadedResult
runThreadedPoint(const bench::BenchWorkload &workload, int threads)
{
    size_t n = workload.reads.size();
    size_t per = (n + kShards - 1) / kShards;
    std::vector<std::pair<size_t, size_t>> chunks;
    for (size_t s = 0; s < kShards; ++s) {
        size_t first = std::min(n, s * per);
        size_t last = std::min(n, first + per);
        if (first < last)
            chunks.emplace_back(first, last);
    }

    runtime::RuntimeConfig cfg;
    cfg.simThreads = threads;
    runtime::AcceleratorSession session(cfg);
    for (size_t shard = 0; shard < chunks.size(); ++shard) {
        auto [first, last] = chunks[shard];
        core::ReadColumns cols =
            core::ReadColumns::fromRange(workload.reads, first, last);
        buildQualSumPipeline(session, shard, std::move(cols.qual),
                             std::move(cols.qualLens));
    }

    ThreadedResult result;
    result.wallSeconds = bench::timeIt([&] {
        session.start();
        session.wait();
    });
    result.workersUsed = session.sim().lastRunWorkers();
    result.cycles = session.sim().cycle();
    const StatRegistry stats = session.sim().collectStats();
    for (const auto &[name, value] : stats.counters()) {
        result.statsSig += name;
        result.statsSig += '=';
        result.statsSig += std::to_string(value);
        result.statsSig += ';';
    }

    result.sums.assign(n, 0);
    for (size_t shard = 0; shard < chunks.size(); ++shard) {
        auto [first, last] = chunks[shard];
        std::string out_name = "p";
        out_name += std::to_string(shard);
        out_name += ".QSUM";
        const modules::ColumnBuffer *flushed = session.flush(out_name);
        for (size_t i = 0; i < flushed->elements.size(); ++i)
            result.sums[first + i] = flushed->elements[i];
    }
    return result;
}

/** Parse "--threads 1,2,4" / "--threads=1,2,4" into the sweep list. */
std::vector<int>
parseThreadsArg(int argc, char **argv)
{
    std::vector<int> sweep;
    const char *list = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threads=", 10) == 0)
            list = argv[i] + 10;
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            list = argv[++i];
    }
    if (!list)
        return sweep;
    for (const char *p = list; *p;) {
        char *end = nullptr;
        long v = std::strtol(p, &end, 10);
        if (end == p || v < 1) {
            std::fprintf(stderr, "bad --threads list: %s\n", list);
            std::exit(2);
        }
        sweep.push_back(static_cast<int>(v));
        p = (*end == ',') ? end + 1 : end;
    }
    return sweep;
}

} // namespace

int
main(int argc, char **argv)
{
    auto workload = bench::makeBenchWorkload();
    bench::printHeader("concurrent multi-pipeline scaling (BatchRunner)",
                       workload);
    std::printf("host hardware_concurrency: %u\n\n",
                std::thread::hardware_concurrency());

    std::vector<int> thread_sweep = parseThreadsArg(argc, argv);
    if (thread_sweep.empty())
        thread_sweep = {1, 2, 4, 8};
    if (thread_sweep.front() != 1)
        thread_sweep.insert(thread_sweep.begin(), 1);

    std::vector<int64_t> baseline;
    double baseline_wall = 0.0;
    bool ok = true;

    std::printf("[\n");
    const int lane_counts[] = {1, 2, 4, 8};
    for (size_t i = 0; i < std::size(lane_counts); ++i) {
        int lanes = lane_counts[i];
        std::vector<int64_t> sums;
        runtime::BatchStats stats = runPoint(workload, lanes, sums);
        if (lanes == 1) {
            baseline = sums;
            baseline_wall = stats.wallSeconds;
        } else if (sums != baseline) {
            ok = false;
        }
        std::printf("  {\"lanes\": %d, \"shards\": %zu, "
                    "\"wall_seconds\": %.4f, \"speedup_vs_1\": %.2f, "
                    "\"total_cycles\": %llu, "
                    "\"accel_seconds\": %.6f, \"dma_seconds\": %.6f, "
                    "\"host_seconds\": %.6f, "
                    "\"hardware_concurrency\": %u, "
                    "\"sums_match_baseline\": %s},\n",
                    lanes, stats.shards, stats.wallSeconds,
                    stats.wallSeconds > 0
                        ? baseline_wall / stats.wallSeconds
                        : 0.0,
                    static_cast<unsigned long long>(stats.totalCycles),
                    stats.timing.accelSeconds, stats.timing.dmaSeconds,
                    stats.timing.hostSeconds,
                    std::thread::hardware_concurrency(),
                    (lanes == 1 || sums == baseline) ? "true" : "false");
    }

    // Thread sweep: one session, lane-sharded scheduler. The 1-thread
    // point is both the timing and the bit-identity baseline.
    ThreadedResult tbase;
    for (size_t i = 0; i < thread_sweep.size(); ++i) {
        int threads = thread_sweep[i];
        ThreadedResult r = runThreadedPoint(workload, threads);
        bool identical = true;
        if (threads == 1 && i == 0) {
            tbase = r;
        } else {
            identical = r.sums == tbase.sums &&
                        r.cycles == tbase.cycles &&
                        r.statsSig == tbase.statsSig;
            if (!identical)
                ok = false;
        }
        double speedup = r.wallSeconds > 0
                             ? tbase.wallSeconds / r.wallSeconds
                             : 0.0;
        double efficiency =
            r.workersUsed > 0 ? speedup / r.workersUsed : 0.0;
        std::printf("  {\"threads\": %d, \"workers_used\": %d, "
                    "\"shards\": %zu, \"wall_seconds\": %.4f, "
                    "\"speedup_vs_1\": %.2f, \"efficiency\": %.2f, "
                    "\"total_cycles\": %llu, "
                    "\"hardware_concurrency\": %u, "
                    "\"bit_identical\": %s}%s\n",
                    threads, r.workersUsed, kShards, r.wallSeconds,
                    speedup, efficiency,
                    static_cast<unsigned long long>(r.cycles),
                    std::thread::hardware_concurrency(),
                    identical ? "true" : "false",
                    i + 1 < thread_sweep.size() ? "," : "");
    }
    std::printf("]\n");

    if (!ok) {
        std::fprintf(stderr,
                     "FAIL: sweep point diverges from its baseline "
                     "(lanes vs 1-lane sums, or threads vs 1-thread "
                     "sums/cycles/stats)\n");
        return 1;
    }
    std::printf("\nall sweep points bit-identical to their baselines\n");
    return 0;
}

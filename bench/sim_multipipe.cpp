/**
 * @file
 * Concurrent multi-pipeline scaling bench (BatchRunner).
 *
 * Shards the bench read set's quality-sum pipeline (the Mark Duplicates
 * hardware portion, Figure 10) into a fixed number of shards and sweeps
 * the number of concurrent pipeline slots: 1, 2, 4, 8. Each sweep point
 * reports wall-clock seconds, per-shard merged timing, and total
 * simulated cycles as JSON; every point's per-read sums are verified
 * bit-for-bit against the 1-slot baseline (exit 1 on mismatch).
 *
 * Wall-clock scaling requires host cores to run the lanes' simulator
 * worker threads in parallel — the report includes
 * hardware_concurrency so single-core results are interpretable.
 *
 * Scale the workload with GENESIS_BENCH_PAIRS.
 */

#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/reducer.h"
#include "pipeline/builder.h"
#include "runtime/batch.h"

using namespace genesis;

namespace {

constexpr size_t kShards = 8;

/** Wire one Figure-10 quality-sum pipeline into a shard's session. */
void
buildQualSumPipeline(runtime::AcceleratorSession &session, size_t shard,
                     std::vector<int64_t> qual,
                     std::vector<uint32_t> qual_lens)
{
    pipeline::PipelineBuilder builder(session.sim(),
                                      static_cast<int>(shard));
    modules::ColumnBuffer *qual_buf = session.configureMem(
        builder.scopedName("READS.QUAL"), std::move(qual),
        std::move(qual_lens), 1);
    auto *qual_q = builder.queue("qual");
    auto *sum_q = builder.queue("sum");
    modules::ColumnBuffer *out =
        session.configureOutput(builder.scopedName("QSUM"), 4);

    modules::MemoryReaderConfig reader_cfg;
    reader_cfg.emitBoundaries = true;
    builder.add<modules::MemoryReader>("MemoryReader", "rd_qual",
                                       qual_buf, builder.port(), qual_q,
                                       reader_cfg);

    modules::ReducerConfig red_cfg;
    red_cfg.op = modules::ReduceOp::Sum;
    red_cfg.granularity = modules::ReduceGranularity::PerItem;
    red_cfg.valueField = 0;
    builder.add<modules::Reducer>("ReducerWide", "sum", qual_q, sum_q,
                                  red_cfg);

    modules::MemoryWriterConfig writer_cfg;
    writer_cfg.fieldIndex = 0;
    writer_cfg.elemSizeBytes = 4;
    builder.add<modules::MemoryWriter>("MemoryWriter", "wr_sum", out,
                                       builder.port(), sum_q,
                                       writer_cfg);
}

/** One sweep point: run kShards shards over `lanes` concurrent slots. */
runtime::BatchStats
runPoint(const bench::BenchWorkload &workload, int lanes,
         std::vector<int64_t> &sums)
{
    size_t n = workload.reads.size();
    size_t per = (n + kShards - 1) / kShards;
    std::vector<std::pair<size_t, size_t>> chunks;
    for (size_t s = 0; s < kShards; ++s) {
        size_t first = std::min(n, s * per);
        size_t last = std::min(n, first + per);
        if (first < last)
            chunks.emplace_back(first, last);
    }
    sums.assign(n, 0);

    runtime::BatchConfig cfg;
    cfg.numLanes = lanes;
    runtime::BatchRunner runner(cfg);
    return runner.run(
        chunks.size(),
        [&](size_t shard, runtime::AcceleratorSession &session) {
            auto [first, last] = chunks[shard];
            core::ReadColumns cols = core::ReadColumns::fromRange(
                workload.reads, first, last);
            buildQualSumPipeline(session, shard, std::move(cols.qual),
                                 std::move(cols.qualLens));
        },
        [&](size_t shard, runtime::AcceleratorSession &session) {
            auto [first, last] = chunks[shard];
            std::string out_name = "p";
            out_name += std::to_string(shard);
            out_name += ".QSUM";
            const modules::ColumnBuffer *flushed =
                session.flush(out_name);
            for (size_t i = 0; i < flushed->elements.size(); ++i)
                sums[first + i] = flushed->elements[i];
        });
}

} // namespace

int
main()
{
    auto workload = bench::makeBenchWorkload();
    bench::printHeader("concurrent multi-pipeline scaling (BatchRunner)",
                       workload);
    std::printf("host hardware_concurrency: %u\n\n",
                std::thread::hardware_concurrency());

    std::vector<int64_t> baseline;
    double baseline_wall = 0.0;
    bool ok = true;

    std::printf("[\n");
    const int lane_counts[] = {1, 2, 4, 8};
    for (size_t i = 0; i < std::size(lane_counts); ++i) {
        int lanes = lane_counts[i];
        std::vector<int64_t> sums;
        runtime::BatchStats stats = runPoint(workload, lanes, sums);
        if (lanes == 1) {
            baseline = sums;
            baseline_wall = stats.wallSeconds;
        } else if (sums != baseline) {
            ok = false;
        }
        std::printf("  {\"lanes\": %d, \"shards\": %zu, "
                    "\"wall_seconds\": %.4f, \"speedup_vs_1\": %.2f, "
                    "\"total_cycles\": %llu, "
                    "\"accel_seconds\": %.6f, \"dma_seconds\": %.6f, "
                    "\"host_seconds\": %.6f, "
                    "\"hardware_concurrency\": %u, "
                    "\"sums_match_baseline\": %s}%s\n",
                    lanes, stats.shards, stats.wallSeconds,
                    stats.wallSeconds > 0
                        ? baseline_wall / stats.wallSeconds
                        : 0.0,
                    static_cast<unsigned long long>(stats.totalCycles),
                    stats.timing.accelSeconds, stats.timing.dmaSeconds,
                    stats.timing.hostSeconds,
                    std::thread::hardware_concurrency(),
                    (lanes == 1 || sums == baseline) ? "true" : "false",
                    i + 1 < std::size(lane_counts) ? "," : "");
    }
    std::printf("]\n");

    if (!ok) {
        std::fprintf(stderr,
                     "FAIL: sharded sums diverge from 1-lane baseline\n");
        return 1;
    }
    std::printf("\nall sweep points bit-identical to 1-lane baseline\n");
    return 0;
}

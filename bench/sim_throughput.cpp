/**
 * @file
 * Simulator-core throughput bench.
 *
 * Measures how many simulated cycles the event-aware core retires per
 * host second, in two regimes:
 *
 *  - "synthetic": a pure-sim producer/worker/sink chain with a long
 *    memory-bound tail, exercising the hot loop (interned counters,
 *    dirty-queue commit, idle-cycle fast-forward) without any genomics
 *    payload work;
 *  - "example_accel": the match-count ExampleAccelerator on the shared
 *    bench workload, i.e. a full design the other benches run.
 *
 * Output is one JSON object per line so CI and scripts can trend the
 * numbers (host Mcycles/s and simulated cycles per wall second).
 *
 * Pass `--trace out.json` to also capture a cycle trace of the
 * synthetic scenario (Chrome trace-event JSON for Perfetto). The traced
 * run is timed separately so the untraced numbers stay comparable.
 */

#include <cinttypes>
#include <cstring>

#include "base/trace.h"
#include "bench_common.h"
#include "core/example_accel.h"
#include "sim/scheduler.h"

using namespace genesis;

namespace {

/** Streams `count` flits into its output queue, one per cycle. */
class Producer final : public sim::Module
{
  public:
    Producer(std::string name, sim::HardwareQueue *out, uint64_t count)
        : Module(std::move(name)), out_(out), remaining_(count)
    {
    }

    void
    tick() override
    {
        if (closed_)
            return;
        if (!out_->canPush()) {
            countStall(stallBackpressure_);
            return;
        }
        if (remaining_ == 0) {
            out_->close();
            closed_ = true;
            return;
        }
        out_->push(sim::makeFlit(static_cast<int64_t>(remaining_)));
        countFlit();
        --remaining_;
    }

    bool done() const override { return closed_; }

  private:
    StatHandle stallBackpressure_ = stallCounter("backpressure");
    sim::HardwareQueue *out_;
    uint64_t remaining_;
    bool closed_ = false;
};

/**
 * Forwards flits while issuing a memory read for every `stride`-th one,
 * stalling until the read retires — the memory-latency-bound pattern the
 * idle-cycle fast-forward targets.
 */
class MemoryBoundWorker final : public sim::Module
{
  public:
    MemoryBoundWorker(std::string name, sim::MemoryPort *port,
                      sim::HardwareQueue *in, sim::HardwareQueue *out,
                      uint64_t stride)
        : Module(std::move(name)), port_(port), in_(in), out_(out),
          stride_(stride)
    {
    }

    void
    tick() override
    {
        if (closed_)
            return;
        if (waitingBytes_ > 0) {
            uint64_t got = port_->takeCompletedReadBytes();
            if (got) {
                waitingBytes_ -= std::min(waitingBytes_, got);
                noteProgress();
            }
            if (waitingBytes_ > 0) {
                countStall(stallMemory_);
                return;
            }
        }
        if (!in_->canPop()) {
            if (in_->drained() && port_->idle()) {
                out_->close();
                closed_ = true;
            } else if (!in_->drained()) {
                countStall(stallStarved_);
            }
            return;
        }
        if (!out_->canPush()) {
            countStall(stallBackpressure_);
            return;
        }
        sim::Flit flit = in_->pop();
        out_->push(flit);
        countFlit();
        if (++seen_ % stride_ == 0 && port_->canIssue()) {
            port_->issue(seen_ * 64, 64, false);
            waitingBytes_ += 64;
        }
    }

    bool done() const override { return closed_; }

  private:
    StatHandle stallMemory_ = stallCounter("memory");
    StatHandle stallStarved_ = stallCounter("starved");
    StatHandle stallBackpressure_ = stallCounter("backpressure");
    sim::MemoryPort *port_;
    sim::HardwareQueue *in_;
    sim::HardwareQueue *out_;
    uint64_t stride_;
    uint64_t seen_ = 0;
    uint64_t waitingBytes_ = 0;
    bool closed_ = false;
};

/** Drains its input queue. */
class Sink final : public sim::Module
{
  public:
    Sink(std::string name, sim::HardwareQueue *in)
        : Module(std::move(name)), in_(in)
    {
    }

    void
    tick() override
    {
        if (in_->canPop()) {
            in_->pop();
            countFlit();
        }
    }

    bool done() const override { return in_->drained(); }

  private:
    sim::HardwareQueue *in_;
};

void
printResult(const char *scenario, uint64_t cycles, double seconds)
{
    double mcycles_per_s = seconds > 0
        ? static_cast<double>(cycles) / seconds / 1e6 : 0.0;
    std::printf("{\"bench\": \"sim_throughput\", "
                "\"scenario\": \"%s\", "
                "\"sim_cycles\": %" PRIu64 ", "
                "\"host_seconds\": %.6f, "
                "\"host_mcycles_per_s\": %.3f, "
                "\"sim_cycles_per_wall_s\": %.1f}\n",
                scenario, cycles, seconds, mcycles_per_s,
                seconds > 0 ? static_cast<double>(cycles) / seconds
                            : 0.0);
}

uint64_t
runSynthetic(uint64_t flits, uint64_t stride,
             TraceSink *trace = nullptr)
{
    sim::MemoryConfig mem;
    mem.latencyCycles = 400; // long tail: fast-forward territory
    sim::Simulator simulator(mem);
    if (trace)
        simulator.attachTrace(trace, "synthetic");
    auto *a = simulator.makeQueue("a", 8);
    auto *b = simulator.makeQueue("b", 8);
    auto *port = simulator.memory().makePort(0);
    simulator.make<Producer>("producer", a, flits);
    simulator.make<MemoryBoundWorker>("worker", port, a, b, stride);
    simulator.make<Sink>("sink", b);
    return simulator.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const char *trace_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace out.json]\n", argv[0]);
            return 2;
        }
    }

    // Pure simulator-core throughput, no genomics payload.
    constexpr uint64_t kFlits = 200'000;
    constexpr uint64_t kStride = 4;
    {
        uint64_t cycles = 0;
        double seconds = bench::timeIt(
            [&] { cycles = runSynthetic(kFlits, kStride); });
        printResult("synthetic", cycles, seconds);
    }

    // Same scenario with tracing enabled: quantifies observer cost and
    // produces a trace file for Perfetto.
    if (trace_path) {
        TraceSink trace;
        uint64_t cycles = 0;
        double seconds = bench::timeIt([&] {
            cycles = runSynthetic(kFlits, kStride, &trace);
        });
        printResult("synthetic_traced", cycles, seconds);
        trace.finish();
        if (!trace.writeJsonFile(trace_path)) {
            std::fprintf(stderr, "cannot write trace to %s\n",
                         trace_path);
            return 1;
        }
        std::fprintf(stderr, "trace written to %s\n%s", trace_path,
                     trace.utilizationSummary().c_str());
    }

    // A full accelerator design, same workload the other benches use.
    {
        auto workload = bench::makeBenchWorkload(bench::envPairs() / 4);
        core::ExampleAccelConfig cfg;
        cfg.numPipelines = 8;
        cfg.psize = 16'384;
        uint64_t cycles = 0;
        double seconds = bench::timeIt([&] {
            auto result = core::ExampleAccelerator(cfg).run(
                workload.reads, workload.genome);
            cycles = result.info.totalCycles;
        });
        printResult("example_accel", cycles, seconds);
    }
    return 0;
}

/**
 * @file
 * Figure 1 reproduction: the NHGRI cost-per-genome survey the paper
 * replicates as motivation. This is background data, not a measurement:
 * the bench re-emits the series (approximate yearly values from the
 * NHGRI sequencing-cost survey) alongside the Moore's-law trajectory so
 * the hundred-thousand-fold drop the paper cites is visible.
 */

#include <cstdio>

int
main()
{
    struct Point {
        int year;
        double costDollars;
    };
    // Approximate NHGRI "cost per genome" series (log scale in the
    // paper's figure), 2001-2019.
    static const Point kSeries[] = {
        {2001, 100'000'000}, {2002, 70'000'000}, {2003, 60'000'000},
        {2004, 20'000'000},  {2005, 10'000'000}, {2006, 10'000'000},
        {2007, 9'000'000},   {2008, 1'000'000},  {2009, 100'000},
        {2010, 30'000},      {2011, 10'000},     {2012, 7'000},
        {2013, 5'000},       {2014, 4'000},      {2015, 1'500},
        {2016, 1'200},       {2017, 1'100},      {2018, 1'000},
        {2019, 1'000},
    };

    std::printf("Figure 1: cost of sequencing a human genome "
                "(NHGRI survey, replicated)\n");
    std::printf("%-6s %16s %18s\n", "year", "cost ($)",
                "Moore's law ($)");
    double moore = 100'000'000;
    for (const auto &p : kSeries) {
        std::printf("%-6d %16.0f %18.0f\n", p.year, p.costDollars,
                    moore);
        moore /= 1.587; // halving every 18 months = /1.587 per year
    }
    double drop = kSeries[0].costDollars /
        kSeries[sizeof(kSeries) / sizeof(kSeries[0]) - 1].costDollars;
    std::printf("\ntotal drop 2001->2019: %.0fx (the paper cites a "
                "hundred-thousand-fold drop, far outpacing Moore's "
                "law)\n", drop);
    return 0;
}

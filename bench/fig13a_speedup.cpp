/**
 * @file
 * Figure 13(a) reproduction: speedup of the three Genesis accelerators
 * over the software baseline for the GATK4 preprocessing stages.
 *
 * Paper reference: Mark Duplicates 2.08x, Metadata Update 19.25x, BQSR
 * (covariate table construction) 12.59x over GATK4 on an 8-core
 * r5.4xlarge.
 *
 * Baseline note (see EXPERIMENTS.md): the paper's baseline is GATK4's
 * Java implementation; ours is this library's optimised C++ software
 * path, which is much faster per core, so absolute speedups here are
 * smaller. The shape to check is the ordering (Metadata Update > BQSR >
 * Mark Duplicates) and where the time goes (Figure 13(b) bench).
 */

#include "bench_common.h"

using namespace genesis;

int
main()
{
    auto workload = bench::makeBenchWorkload();
    bench::printHeader("Figure 13(a): Genesis speedup over software",
                       workload);

    auto m = bench::measureStages(workload);

    struct Row {
        const char *stage;
        bench::Stage kind;
        double sw1;
        double genesis;
        double paper;
    };
    Row rows[] = {
        {"Mark Duplicates", bench::Stage::MarkDuplicates, m.swMarkDup,
         m.mdTiming.total(), 2.08},
        {"Metadata Update", bench::Stage::MetadataUpdate, m.swMetadata,
         m.muTiming.total(), 19.25},
        {"BQSR (table construction)", bench::Stage::BqsrTable, m.swBqsr,
         m.bqTiming.total(), 12.59},
    };

    std::printf("%-28s %11s %11s %12s %12s %9s %9s %9s\n", "stage",
                "C++ 1T (s)", "GATK* (s)", "genesis (s)", "vs C++ 1T",
                "vs GATK*", "paper", "match");
    for (const auto &row : rows) {
        double gatk =
            bench::paperGatkSeconds(row.kind, workload.totalBases);
        double vs_gatk = gatk / row.genesis;
        std::printf("%-28s %11.4f %11.3f %12.4f %11.2fx %8.2fx %8.2fx "
                    "%8.0f%%\n",
                    row.stage, row.sw1, gatk, row.genesis,
                    row.sw1 / row.genesis, vs_gatk, row.paper,
                    100.0 * vs_gatk / row.paper);
    }
    std::printf("* GATK baseline modelled from the paper's own 8-core "
                "per-stage throughput (Figure 9 shares over the 3.5 h "
                "three-stage total; see bench_common.h). Our C++ "
                "reimplementation is orders of magnitude faster per "
                "core than GATK's Java, so 'vs C++ 1T' understates "
                "what the paper measured.\n");

    // Ordering check - the shape the paper reports.
    double md = bench::paperGatkSeconds(bench::Stage::MarkDuplicates,
                                        workload.totalBases) /
        m.mdTiming.total();
    double mu = bench::paperGatkSeconds(bench::Stage::MetadataUpdate,
                                        workload.totalBases) /
        m.muTiming.total();
    double bq = bench::paperGatkSeconds(bench::Stage::BqsrTable,
                                        workload.totalBases) /
        m.bqTiming.total();
    std::printf("\nshape check vs GATK baseline: MetadataUpdate %s "
                "MarkDuplicates and %s BQSR (paper: 19.3x > 2.1x, "
                "19.3x > 12.6x)\n",
                mu > md ? ">" : "<=", mu > bq ? ">" : "<=");

    std::printf("\naccelerator throughput (simulated):\n");
    auto throughput = [&](const char *name,
                          const core::AccelRunInfo &info) {
        double accel_s = info.timing.accelSeconds;
        if (accel_s <= 0)
            return;
        std::printf("  %-26s %8.1f Mbp/s through %llu cycles "
                    "(%llu batches)\n",
                    name,
                    static_cast<double>(workload.totalBases) / accel_s /
                        1e6,
                    static_cast<unsigned long long>(info.totalCycles),
                    static_cast<unsigned long long>(info.batches));
    };
    throughput("Mark Duplicates", m.mdInfo);
    throughput("Metadata Update", m.muInfo);
    throughput("BQSR", m.bqInfo);
    return 0;
}

/**
 * @file
 * Table II reproduction: the AWS EC2 machine configurations of the
 * paper's evaluation — f1.2xlarge hosting the Genesis FPGA and the
 * memory-optimised r5.4xlarge running GATK4 — plus this library's
 * simulation parameters for the same platform.
 */

#include <cstdio>

#include "cost/cost.h"
#include "runtime/api.h"

using namespace genesis;

int
main()
{
    std::printf("Table II: hardware configurations (AWS EC2, 2019-11 "
                "prices)\n\n");
    std::printf("Genesis system:  %s\n",
                cost::InstanceSpec::f1_2xlarge().str().c_str());
    std::printf("GATK4 baseline:  %s\n",
                cost::InstanceSpec::r5_4xlarge().str().c_str());

    runtime::RuntimeConfig rt;
    std::printf("\nsimulation parameters standing in for the F1 "
                "platform:\n");
    std::printf("  accelerator clock        %.0f MHz (paper: 250 MHz)\n",
                rt.clockHz / 1e6);
    std::printf("  memory channels          %d x %u B/cycle "
                "(%.1f GB/s total)\n",
                rt.memory.numChannels,
                rt.memory.bytesPerCyclePerChannel,
                rt.memory.numChannels *
                    rt.memory.bytesPerCyclePerChannel * rt.clockHz /
                    1e9);
    std::printf("  memory latency           %u cycles\n",
                rt.memory.latencyCycles);
    std::printf("  host interconnect        %s, %.1f GB/s "
                "(paper measured ~7 GB/s PCIe DMA)\n",
                rt.dma.name.c_str(), rt.dma.bytesPerSecond / 1e9);
    std::printf("  pipeline counts          16 (Mark Duplicates), 16 "
                "(Metadata Update), 8 (BQSR) as in Section V-A\n");
    return 0;
}

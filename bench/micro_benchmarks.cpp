/**
 * @file
 * Google-benchmark microbenchmarks for the performance-critical library
 * primitives: CIGAR handling, read explosion, the software baselines,
 * the SQL engine, and raw simulator throughput. These quantify the cost
 * of each layer rather than reproduce a paper figure.
 */

#include <benchmark/benchmark.h>

#include "core/example_accel.h"
#include "engine/executor.h"
#include "gatk/bqsr.h"
#include "gatk/markdup.h"
#include "gatk/metadata.h"
#include "genome/read_simulator.h"
#include "modules/reducer.h"
#include "sql/parser.h"
#include "table/genomic_schema.h"

namespace genesis {
namespace {

struct SharedWorkload {
    genome::ReferenceGenome genome;
    std::vector<genome::AlignedRead> reads;
};

const SharedWorkload &
workload()
{
    static SharedWorkload w = [] {
        SharedWorkload out;
        genome::SyntheticGenomeConfig gcfg;
        gcfg.numChromosomes = 2;
        gcfg.firstChromosomeLength = 200'000;
        out.genome = genome::ReferenceGenome::synthesize(gcfg);
        genome::ReadSimulatorConfig rcfg;
        rcfg.numPairs = 2'000;
        out.reads =
            genome::ReadSimulator(out.genome, rcfg).simulate().reads;
        return out;
    }();
    return w;
}

void
BM_CigarParse(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            genome::Cigar::parse("12S61M2I55M1D21M"));
    }
}
BENCHMARK(BM_CigarParse);

void
BM_ExplodeRead(benchmark::State &state)
{
    const auto &read = workload().reads.front();
    int64_t bases = 0;
    for (auto _ : state) {
        auto rows = genome::explodeRead(read.pos, read.cigar, read.seq,
                                        read.qual);
        bases += static_cast<int64_t>(rows.size());
        benchmark::DoNotOptimize(rows);
    }
    state.SetItemsProcessed(bases);
}
BENCHMARK(BM_ExplodeRead);

void
BM_SoftwareMarkDuplicates(benchmark::State &state)
{
    for (auto _ : state) {
        auto reads = workload().reads;
        benchmark::DoNotOptimize(gatk::markDuplicates(reads));
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<int64_t>(workload().reads.size()));
}
BENCHMARK(BM_SoftwareMarkDuplicates);

void
BM_SoftwareMetadataUpdate(benchmark::State &state)
{
    for (auto _ : state) {
        auto reads = workload().reads;
        gatk::setNmMdUqTags(reads, workload().genome);
        benchmark::DoNotOptimize(reads);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<int64_t>(workload().reads.size()));
}
BENCHMARK(BM_SoftwareMetadataUpdate);

void
BM_SoftwareBqsrTable(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(gatk::buildCovariateTable(
            workload().reads, workload().genome));
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<int64_t>(workload().reads.size()));
}
BENCHMARK(BM_SoftwareBqsrTable);

void
BM_SqlParseFigure4(benchmark::State &state)
{
    const std::string text = core::matchCountQueryText();
    for (auto _ : state)
        benchmark::DoNotOptimize(sql::parseScript(text));
}
BENCHMARK(BM_SqlParseFigure4);

void
BM_EngineGroupBy(benchmark::State &state)
{
    engine::Catalog catalog;
    catalog.put("READS", table::buildReadsTable(workload().reads));
    for (auto _ : state) {
        engine::Executor executor(catalog);
        benchmark::DoNotOptimize(executor.run(
            "SELECT CHR, COUNT(*) FROM READS GROUP BY CHR"));
    }
}
BENCHMARK(BM_EngineGroupBy);

void
BM_SimulatorCyclesPerSecond(benchmark::State &state)
{
    // Raw simulation speed: a source/reducer/sink chain; reports host
    // nanoseconds per simulated cycle.
    int64_t cycles = 0;
    for (auto _ : state) {
        sim::Simulator simulator;
        auto *q = simulator.makeQueue("q");
        auto *out = simulator.makeQueue("out");

        class Source : public sim::Module
        {
          public:
            Source(std::string name, sim::HardwareQueue *o)
                : Module(std::move(name)), out_(o)
            {
            }
            void
            tick() override
            {
                if (closed_ || !out_->canPush())
                    return;
                if (n_ < 10'000) {
                    out_->push(sim::makeFlit(n_++, 1));
                    return;
                }
                out_->close();
                closed_ = true;
            }
            bool done() const override { return closed_; }

          private:
            sim::HardwareQueue *out_;
            int64_t n_ = 0;
            bool closed_ = false;
        };
        simulator.make<Source>("src", q);
        modules::ReducerConfig cfg;
        cfg.op = modules::ReduceOp::Sum;
        simulator.make<modules::Reducer>("sum", q, out, cfg);

        class Sink : public sim::Module
        {
          public:
            Sink(std::string name, sim::HardwareQueue *in)
                : Module(std::move(name)), in_(in)
            {
            }
            void
            tick() override
            {
                if (in_->canPop())
                    in_->pop();
                else if (in_->drained())
                    finished_ = true;
            }
            bool done() const override { return finished_; }

          private:
            sim::HardwareQueue *in_;
            bool finished_ = false;
        };
        simulator.make<Sink>("sink", out);
        cycles += static_cast<int64_t>(simulator.run());
    }
    state.SetItemsProcessed(cycles);
}
BENCHMARK(BM_SimulatorCyclesPerSecond);

void
BM_ExampleAcceleratorEndToEnd(benchmark::State &state)
{
    for (auto _ : state) {
        core::ExampleAccelConfig cfg;
        cfg.numPipelines = 4;
        cfg.psize = 65'536;
        benchmark::DoNotOptimize(core::ExampleAccelerator(cfg).run(
            workload().reads, workload().genome));
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<int64_t>(workload().reads.size()));
}
// Most of this bench's time is simulator wall-clock on a worker thread,
// which google-benchmark's CPU-time iteration control cannot see: pin
// the iteration count.
BENCHMARK(BM_ExampleAcceleratorEndToEnd)->Iterations(3);

} // namespace
} // namespace genesis

BENCHMARK_MAIN();

/**
 * @file
 * Design-space exploration sweep over the Genesis hardware models
 * (ROADMAP item 5, DESIGN.md §10).
 *
 * Sweeps the default grid — 3 accelerators x pipeline replication x SPM
 * partition size x memory preset (DDR4 / near-bank PIM) x PCIe
 * generation x clock — one full simulation per point, points farmed
 * across host cores, and prints the Pareto frontiers of simulated
 * throughput vs $/genome vs VU9P utilization. The frontier JSON is
 * byte-identical at any worker count (see src/dse/dse.h).
 *
 * Flags:
 *   --out FILE    write the sweep JSON to FILE (default: stdout)
 *   --workers N   concurrent points (default: auto; also
 *                 GENESIS_DSE_WORKERS)
 *   --pairs N     synthetic read pairs (default: 400; also
 *                 GENESIS_DSE_PAIRS)
 *   --check       run the frontier sanity gate; exit 1 on any problem
 *                 (non-empty, monotone front; used by CI)
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "base/env.h"
#include "base/logging.h"
#include "dse/dse.h"

using namespace genesis;

namespace {

const char *
argValue(int argc, char **argv, const char *flag)
{
    const size_t flag_len = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], flag, flag_len) == 0 &&
            argv[i][flag_len] == '=')
            return argv[i] + flag_len + 1;
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc)
            return argv[i + 1];
    }
    return nullptr;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    dse::SweepSpec spec = dse::SweepSpec::defaultGrid();
    spec.numPairs = envInt64("GENESIS_DSE_PAIRS", spec.numPairs, 1);
    if (const char *pairs = argValue(argc, argv, "--pairs"))
        spec.numPairs = std::atoll(pairs);

    dse::HarnessOptions options;
    if (const char *workers = argValue(argc, argv, "--workers"))
        options.workers = std::atoi(workers);

    std::fprintf(stderr, "sim_dse: sweeping %zu points (%lld pairs)\n",
                 spec.numPoints(),
                 static_cast<long long>(spec.numPairs));
    dse::SweepResult result = dse::runSweep(spec, options);

    const std::string json = dse::toJson(result);
    const char *out = argValue(argc, argv, "--out");
    if (out) {
        FILE *f = std::fopen(out, "w");
        if (!f) {
            std::fprintf(stderr, "sim_dse: cannot open %s\n", out);
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "sim_dse: wrote %s\n", out);
    } else {
        std::fwrite(json.data(), 1, json.size(), stdout);
    }
    std::fputs(dse::summary(result).c_str(), stderr);

    if (hasFlag(argc, argv, "--check")) {
        std::vector<std::string> problems = dse::checkFrontier(result);
        for (const auto &p : problems)
            std::fprintf(stderr, "FAIL: %s\n", p.c_str());
        if (!problems.empty())
            return 1;
        std::fprintf(stderr, "frontier sanity: OK (%zu frontiers)\n",
                     result.frontiers.size());
    }
    return 0;
}

/**
 * @file
 * Shared workload construction and measurement helpers for the
 * table/figure reproduction benches.
 *
 * The workload approximates the paper's evaluation input in miniature: a
 * multi-chromosome reference with dbSNP-like known sites and paired
 * 151 bp Illumina-like reads with duplicates, indels, clips and biased
 * errors. Scale with GENESIS_BENCH_PAIRS (default 20'000 pairs, see
 * envPairs()).
 */

#ifndef GENESIS_BENCH_BENCH_COMMON_H
#define GENESIS_BENCH_BENCH_COMMON_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/env.h"
#include "core/bqsr_accel.h"
#include "core/markdup_accel.h"
#include "core/metadata_accel.h"
#include "gatk/bqsr.h"
#include "gatk/markdup.h"
#include "gatk/metadata.h"
#include "genome/read_simulator.h"

namespace genesis::bench {

/** A reference genome plus an aligned read set. */
struct BenchWorkload {
    genome::ReferenceGenome genome;
    std::vector<genome::AlignedRead> reads;
    int64_t totalBases = 0;
};

inline int64_t
envPairs(int64_t default_pairs = 20'000)
{
    return envInt64("GENESIS_BENCH_PAIRS", default_pairs, 1);
}

inline BenchWorkload
makeBenchWorkload(int64_t num_pairs = envPairs(), int num_chromosomes = 2,
                  uint64_t seed = 2020)
{
    BenchWorkload w;
    genome::SyntheticGenomeConfig gcfg;
    gcfg.numChromosomes = num_chromosomes;
    gcfg.firstChromosomeLength = 300'000;
    gcfg.lengthDecay = 0.6;
    gcfg.minChromosomeLength = 100'000;
    gcfg.seed = seed;
    w.genome = genome::ReferenceGenome::synthesize(gcfg);

    genome::ReadSimulatorConfig rcfg;
    rcfg.numPairs = num_pairs;
    rcfg.seed = seed * 17 + 3;
    w.reads = genome::ReadSimulator(w.genome, rcfg).simulate().reads;
    for (const auto &read : w.reads)
        w.totalBases += static_cast<int64_t>(read.seq.size());
    return w;
}

/** Wall-clock one callable, in seconds. */
template <typename Fn>
double
timeIt(Fn &&fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
}

/** Measured software-vs-Genesis numbers for the three stages. */
struct StageMeasurements {
    /** Single-thread measured software time (this host). */
    double swMarkDup = 0, swMetadata = 0, swBqsr = 0;
    /** Genesis stage timing ledgers. */
    runtime::TimingBreakdown mdTiming, muTiming, bqTiming;
    core::AccelRunInfo mdInfo, muInfo, bqInfo;

    /**
     * Software time scaled to the paper's 8-core baseline assumption
     * (the paper itself scales the single-threaded metadata baseline by
     * 8, Section V footnote 4).
     */
    static double eightCore(double single) { return single / 8.0; }
};

/** Run all three stages in software and on the accelerators. */
inline StageMeasurements
measureStages(const BenchWorkload &workload,
              const runtime::RuntimeConfig &rt = runtime::RuntimeConfig())
{
    StageMeasurements m;

    // Software baselines (fresh copies; timings exclude the copy).
    {
        auto reads = workload.reads;
        m.swMarkDup = timeIt([&] { gatk::markDuplicates(reads); });
    }
    {
        auto reads = workload.reads;
        m.swMetadata = timeIt(
            [&] { gatk::setNmMdUqTags(reads, workload.genome); });
    }
    {
        m.swBqsr = timeIt([&] {
            gatk::buildCovariateTable(workload.reads, workload.genome);
        });
    }

    // Genesis accelerators at the paper's pipeline counts.
    {
        auto reads = workload.reads;
        core::MarkDupAccelConfig cfg;
        cfg.numPipelines = 16;
        cfg.runtime = rt;
        auto result = core::MarkDupAccelerator(cfg).run(reads);
        m.mdTiming = result.info.timing;
        m.mdInfo = std::move(result.info);
    }
    {
        auto reads = workload.reads;
        core::MetadataAccelConfig cfg;
        cfg.numPipelines = 16;
        cfg.psize = 131'072;
        cfg.runtime = rt;
        auto result =
            core::MetadataAccelerator(cfg).run(reads, workload.genome);
        m.muTiming = result.info.timing;
        m.muInfo = std::move(result.info);
    }
    {
        core::BqsrAccelConfig cfg;
        cfg.numPipelines = 8;
        cfg.psize = 131'072;
        cfg.runtime = rt;
        auto result = core::BqsrAccelerator(cfg).run(workload.reads,
                                                     workload.genome);
        m.bqTiming = result.info.timing;
        m.bqInfo = std::move(result.info);
    }
    return m;
}

/**
 * GATK4-calibrated baseline model, derived from the paper's own numbers:
 * the three accelerated stages take ~3.5 hours for a ~700 M-read
 * (~105.7 Gbp) genome on the 8-core r5.4xlarge, split 27.2 / 41.8 /
 * 12.4 (Figure 9, alignment-accelerated bars). That yields per-stage
 * GATK throughputs of roughly 25 / 16 / 55 Mbp/s, which scale to any
 * workload size. Our C++ baselines are 2-3 orders of magnitude faster
 * per core than GATK's Java, so this model is what paper-comparable
 * speedups must be measured against (see EXPERIMENTS.md).
 */
enum class Stage { MarkDuplicates, MetadataUpdate, BqsrTable };

inline double
paperGatkSeconds(Stage stage, int64_t total_bases)
{
    constexpr double kPaperBases = 700e6 * 151.0;
    constexpr double kPaperTotalSeconds = 3.5 * 3600.0;
    double share = 0;
    switch (stage) {
      case Stage::MarkDuplicates: share = 27.2 / 81.4; break;
      case Stage::MetadataUpdate: share = 41.8 / 81.4; break;
      case Stage::BqsrTable: share = 12.4 / 81.4; break;
    }
    return kPaperTotalSeconds * share *
        static_cast<double>(total_bases) / kPaperBases;
}

/** Print a header naming the bench and the workload. */
inline void
printHeader(const char *title, const BenchWorkload &workload)
{
    std::printf("==================================================\n");
    std::printf("%s\n", title);
    std::printf("workload: %zu reads (%lld bp), reference %lld bp in "
                "%zu chromosomes\n",
                workload.reads.size(),
                static_cast<long long>(workload.totalBases),
                static_cast<long long>(workload.genome.totalLength()),
                workload.genome.numChromosomes());
    std::printf("==================================================\n");
}

} // namespace genesis::bench

#endif // GENESIS_BENCH_BENCH_COMMON_H

/**
 * @file
 * Ablation: pipeline-parallelism scaling (the Figure 8 design point).
 *
 * Sweeps the number of replicated pipelines for the match-count
 * accelerator on a fixed workload and reports simulated cycles, speedup
 * over one pipeline, and memory-channel pressure. The paper stopped at
 * 16/16/8 pipelines because "an accelerator can no longer get more
 * speedup from parallelism due to memory or communication bottlenecks";
 * this sweep shows that ceiling forming.
 */

#include "bench_common.h"
#include "core/example_accel.h"

using namespace genesis;

int
main()
{
    auto workload = bench::makeBenchWorkload(bench::envPairs() / 2);
    bench::printHeader("Ablation: pipeline parallelism sweep", workload);

    auto sweep = [&](const char *title,
                     const sim::MemoryConfig &mem_cfg) {
        std::printf("%s\n", title);
        std::printf("%-10s %14s %10s %14s %16s\n", "pipelines",
                    "cycles", "speedup", "accel (s)",
                    "mem busy cycles");
        uint64_t base_cycles = 0;
        for (int pipelines : {1, 2, 4, 8, 16, 32}) {
            core::ExampleAccelConfig cfg;
            cfg.numPipelines = pipelines;
            cfg.psize = 16'384;
            cfg.runtime.memory = mem_cfg;
            auto result = core::ExampleAccelerator(cfg).run(
                workload.reads, workload.genome);
            if (base_cycles == 0)
                base_cycles = result.info.totalCycles;
            std::printf("%-10d %14llu %9.2fx %14.6f %16llu\n",
                        pipelines,
                        static_cast<unsigned long long>(
                            result.info.totalCycles),
                        static_cast<double>(base_cycles) /
                            static_cast<double>(
                                result.info.totalCycles),
                        result.info.timing.accelSeconds,
                        static_cast<unsigned long long>(
                            result.info.stats.get(
                                "mem.channel_busy_cycles")));
        }
        std::printf("\n");
    };

    sweep("--- F1-class memory (4 channels x 16 B/cycle) ---",
          sim::MemoryConfig{});

    sim::MemoryConfig narrow;
    narrow.numChannels = 1;
    narrow.bytesPerCyclePerChannel = 4;
    sweep("--- constrained memory (1 channel x 4 B/cycle) ---", narrow);

    std::printf("scaling flattens when either the partitions per batch "
                "run out or the shared memory channels saturate (the "
                "constrained sweep) - the reason the paper caps "
                "pipeline counts at 16/16/8.\n");
    return 0;
}

/**
 * @file
 * Figure 13(b) reproduction: where the Genesis runtime goes — host
 * software, host-FPGA communication (PCIe DMA), or the accelerator — and
 * the PCIe 4.0 projection.
 *
 * Paper reference: Mark Duplicates is 99.35% host-bound; Metadata Update
 * spends 53.4% and BQSR 29.5% of runtime in DMA; with a 32 GB/s PCIe 4.0
 * link the Metadata Update / BQSR speedups improve to 33x / 16.4x (from
 * 19.25x / 12.59x), i.e. 1.71x / 1.30x faster.
 */

#include "bench_common.h"

using namespace genesis;

int
main()
{
    auto workload = bench::makeBenchWorkload();
    bench::printHeader(
        "Figure 13(b): Genesis runtime breakdown + PCIe 4.0 projection",
        workload);

    runtime::RuntimeConfig pcie3;
    auto m3 = bench::measureStages(workload, pcie3);

    runtime::RuntimeConfig pcie4;
    pcie4.dma = runtime::DmaConfig::pcie4();
    auto m4 = bench::measureStages(workload, pcie4);

    auto row = [](const char *stage, const runtime::TimingBreakdown &t,
                  const char *paper) {
        double total = t.total();
        std::printf("%-28s host %5.1f%% | communication %5.1f%% | "
                    "accelerator %5.1f%%\n", stage,
                    100.0 * t.hostSeconds / total,
                    100.0 * t.dmaSeconds / total,
                    100.0 * t.accelSeconds / total);
        std::printf("%-28s (paper: %s)\n", "", paper);
    };
    row("Mark Duplicates", m3.mdTiming, "99.35% host");
    row("Metadata Update", m3.muTiming, "53.4% communication");
    row("BQSR (table construction)", m3.bqTiming,
        "29.5% communication");

    std::printf("\nPCIe 4.0 (32 GB/s) projection:\n");
    auto projection = [](const char *stage, double t3, double t4,
                         double paper_gain) {
        std::printf("  %-26s pcie3 %8.4f s -> pcie4 %8.4f s "
                    "(%.2fx faster; paper projects %.2fx)\n",
                    stage, t3, t4, t3 / t4, paper_gain);
    };
    projection("Mark Duplicates", m3.mdTiming.total(),
               m4.mdTiming.total(), 1.0);
    projection("Metadata Update", m3.muTiming.total(),
               m4.muTiming.total(), 33.0 / 19.25);
    projection("BQSR", m3.bqTiming.total(), m4.bqTiming.total(),
               16.4 / 12.59);

    std::printf("\ncommunication-bound stages benefit most from the "
                "faster interconnect, as the paper argues.\n");
    return 0;
}

/**
 * @file
 * JOB-style SQL join benchmark over a genomic star schema.
 *
 * Four fixed multi-join queries (READS -> SAMPLES -> COHORTS star plus
 * a POS-keyed VARIANTS side) run through three executor modes:
 *
 *  - "naive":      optimizer off, row-at-a-time interpretation
 *                  (nested-loop joins, no pushdown);
 *  - "optimized":  full rewrite pass (pushdown, hash joins, reorder),
 *                  row-at-a-time execution;
 *  - "vectorized": full rewrite pass + batched columnar operators.
 *
 * Every mode's result table is checked bit-identical against the naive
 * run before any timing is reported — a speedup that changes answers is
 * a bug, not a win. Output is one JSON object per line for CI trending
 * (scripts/check_perf.py). Scale with GENESIS_BENCH_PAIRS; with
 * `--require-speedup X` the bench exits non-zero unless the vectorized
 * mode is at least X times faster than naive over the whole suite.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/rng.h"
#include "bench_common.h"
#include "engine/executor.h"
#include "table/table.h"

using namespace genesis;
using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

namespace {

/** READS -> SAMPLES -> COHORTS star plus a POS-keyed VARIANTS side. */
engine::Catalog
makeStarCatalog(int64_t pairs, uint64_t seed)
{
    Rng rng(seed);
    const int64_t reads = 2 * pairs;
    const int64_t samples = std::max<int64_t>(8, pairs / 16);
    const int64_t cohorts = 16;
    const int64_t variants = std::max<int64_t>(16, pairs / 2);
    const int64_t span = 4 * reads;

    engine::Catalog cat;
    {
        Schema s;
        s.addField("ID", DataType::Int64);
        s.addField("SAMPLE_ID", DataType::Int64);
        s.addField("POS", DataType::Int64);
        s.addField("MAPQ", DataType::Int64);
        s.addField("FLAGS", DataType::Int64);
        Table t("READS", s);
        for (int64_t i = 0; i < reads; ++i) {
            Value mapq = rng.below(20) == 0
                ? Value()
                : Value(static_cast<int64_t>(rng.below(60)));
            t.appendRow({Value(i),
                         Value(static_cast<int64_t>(rng.below(
                             static_cast<uint64_t>(samples)))),
                         Value(static_cast<int64_t>(rng.below(
                             static_cast<uint64_t>(span)))),
                         mapq,
                         Value(static_cast<int64_t>(rng.below(4)))});
        }
        cat.put("READS", std::move(t));
    }
    {
        Schema s;
        s.addField("SAMPLE_ID", DataType::Int64);
        s.addField("COHORT_ID", DataType::Int64);
        s.addField("QUALITY", DataType::Int64);
        Table t("SAMPLES", s);
        for (int64_t i = 0; i < samples; ++i) {
            t.appendRow({Value(i),
                         Value(static_cast<int64_t>(rng.below(
                             static_cast<uint64_t>(cohorts)))),
                         Value(static_cast<int64_t>(rng.below(100)))});
        }
        cat.put("SAMPLES", std::move(t));
    }
    {
        Schema s;
        s.addField("COHORT_ID", DataType::Int64);
        s.addField("REGION", DataType::Int64);
        s.addField("WEIGHT", DataType::Int64);
        Table t("COHORTS", s);
        for (int64_t i = 0; i < cohorts; ++i) {
            t.appendRow({Value(i),
                         Value(static_cast<int64_t>(rng.below(10))),
                         Value(static_cast<int64_t>(rng.below(1000)))});
        }
        cat.put("COHORTS", std::move(t));
    }
    {
        Schema s;
        s.addField("POS", DataType::Int64);
        s.addField("DEPTH", DataType::Int64);
        s.addField("IS_SNP", DataType::Int64);
        Table t("VARIANTS", s);
        for (int64_t i = 0; i < variants; ++i) {
            t.appendRow({Value(static_cast<int64_t>(rng.below(
                             static_cast<uint64_t>(span)))),
                         Value(static_cast<int64_t>(rng.below(500))),
                         Value(static_cast<int64_t>(rng.below(2)))});
        }
        cat.put("VARIANTS", std::move(t));
    }
    return cat;
}

struct Query {
    const char *name;
    const char *sql;
};

constexpr Query kQueries[] = {
    {"Q1_star_agg",
     "SELECT COUNT(*) AS n, SUM(r.MAPQ) AS m FROM READS r "
     "INNER JOIN SAMPLES s ON r.SAMPLE_ID = s.SAMPLE_ID "
     "INNER JOIN COHORTS c ON s.COHORT_ID = c.COHORT_ID "
     "WHERE r.MAPQ >= 20 AND c.REGION == 3 GROUP BY s.COHORT_ID"},
    {"Q2_variant_scan",
     "SELECT COUNT(*) AS n, MIN(r.POS) AS p FROM READS r "
     "INNER JOIN VARIANTS v ON r.POS = v.POS "
     "WHERE v.IS_SNP == 1 AND r.FLAGS != 0 GROUP BY r.FLAGS"},
    {"Q3_four_way",
     "SELECT COUNT(*) AS n FROM READS r "
     "INNER JOIN SAMPLES s ON r.SAMPLE_ID = s.SAMPLE_ID "
     "INNER JOIN COHORTS c ON s.COHORT_ID = c.COHORT_ID "
     "INNER JOIN VARIANTS v ON r.POS = v.POS "
     "WHERE r.MAPQ >= 10 AND s.QUALITY >= 30 GROUP BY c.REGION"},
    {"Q4_outer_project",
     "SELECT r.ID AS id, r.POS AS pos, v.DEPTH AS d FROM READS r "
     "LEFT JOIN VARIANTS v ON r.POS = v.POS "
     "WHERE r.MAPQ >= 30 AND NOT r.FLAGS == 2"},
};

struct Mode {
    const char *name;
    bool optimize;
    bool vectorize;
};

constexpr Mode kModes[] = {
    {"naive", false, false},
    {"optimized", true, false},
    {"vectorized", true, true},
};

Table
runQuery(engine::Catalog &cat, const Mode &mode, const char *sql)
{
    engine::ExecConfig cfg;
    cfg.optimize = mode.optimize;
    cfg.vectorize = mode.vectorize;
    engine::Executor exec(cat, cfg);
    auto result = exec.run(sql);
    if (!result) {
        std::fprintf(stderr, "query produced no result table: %s\n",
                     sql);
        std::exit(1);
    }
    return std::move(*result);
}

} // namespace

int
main(int argc, char **argv)
{
    double require_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--require-speedup") == 0 &&
            i + 1 < argc) {
            require_speedup = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--require-speedup X]\n", argv[0]);
            return 2;
        }
    }

    const int64_t pairs = bench::envPairs(2'000);
    engine::Catalog cat = makeStarCatalog(pairs, 2020);
    constexpr int kRepeats = 3;

    double total[std::size(kModes)] = {};
    bool ok = true;
    for (const Query &q : kQueries) {
        Table baseline("none", {});
        for (size_t m = 0; m < std::size(kModes); ++m) {
            const Mode &mode = kModes[m];
            Table result("none", {});
            double best = 0.0;
            for (int rep = 0; rep < kRepeats; ++rep) {
                double secs = bench::timeIt(
                    [&] { result = runQuery(cat, mode, q.sql); });
                if (rep == 0 || secs < best)
                    best = secs;
            }
            if (m == 0) {
                baseline = result;
            } else if (!baseline.contentEquals(result)) {
                std::fprintf(stderr,
                             "MISMATCH: mode '%s' diverged from naive "
                             "on %s\nnaive:\n%s\n%s:\n%s\n",
                             mode.name, q.name, baseline.str(10).c_str(),
                             mode.name, result.str(10).c_str());
                ok = false;
            }
            total[m] += best;
            std::printf("{\"bench\": \"sql_join\", \"query\": \"%s\", "
                        "\"mode\": \"%s\", \"rows\": %zu, "
                        "\"wall_seconds\": %.6f}\n",
                        q.name, mode.name, result.numRows(), best);
        }
    }

    double speedup_opt = total[1] > 0 ? total[0] / total[1] : 0.0;
    double speedup_vec = total[2] > 0 ? total[0] / total[2] : 0.0;
    std::printf("{\"bench\": \"sql_join\", \"summary\": true, "
                "\"pairs\": %lld, "
                "\"naive_seconds\": %.6f, "
                "\"optimized_seconds\": %.6f, "
                "\"vectorized_seconds\": %.6f, "
                "\"optimized_speedup\": %.2f, "
                "\"vectorized_speedup\": %.2f}\n",
                static_cast<long long>(pairs), total[0], total[1],
                total[2], speedup_opt, speedup_vec);

    if (!ok) {
        std::fprintf(stderr, "result mismatch between executor modes\n");
        return 1;
    }
    if (require_speedup > 0 && speedup_vec < require_speedup) {
        std::fprintf(stderr,
                     "vectorized speedup %.2fx below required %.2fx\n",
                     speedup_vec, require_speedup);
        return 1;
    }
    return 0;
}

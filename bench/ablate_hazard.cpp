/**
 * @file
 * Ablation: cost of the read-modify-write hazard interlock in the BQSR
 * SPM updaters (Section III-C).
 *
 * Part 1 measures the interlock's stall share inside a real BQSR run.
 * Part 2 isolates the module: an SpmUpdater in RMW mode fed with
 * (a) all-distinct addresses, (b) strided repeats, (c) a same-address
 * burst — the worst case the interlock exists to make correct.
 */

#include "bench_common.h"
#include "modules/spm_updater.h"
#include "sim/scheduler.h"

using namespace genesis;

namespace {

/** Drive one RMW updater with a given address stream; return cycles. */
uint64_t
runUpdater(const std::vector<int64_t> &addrs, uint64_t *stalls)
{
    sim::Simulator simulator;
    auto *spm = simulator.makeScratchpad("counts", 1024);
    auto *q = simulator.makeQueue("in");

    class AddrSource : public sim::Module
    {
      public:
        AddrSource(std::string name, sim::HardwareQueue *out,
                   const std::vector<int64_t> &addrs)
            : Module(std::move(name)), out_(out), addrs_(addrs)
        {
        }
        void
        tick() override
        {
            if (closed_ || !out_->canPush())
                return;
            if (cursor_ < addrs_.size()) {
                out_->push(sim::makeFlit(addrs_[cursor_++]));
                return;
            }
            out_->close();
            closed_ = true;
        }
        bool done() const override { return closed_; }

      private:
        sim::HardwareQueue *out_;
        const std::vector<int64_t> &addrs_;
        size_t cursor_ = 0;
        bool closed_ = false;
    };

    simulator.make<AddrSource>("src", q, addrs);
    modules::SpmUpdaterConfig cfg;
    cfg.mode = modules::SpmUpdateMode::ReadModifyWrite;
    auto *updater =
        simulator.make<modules::SpmUpdater>("upd", spm, q, cfg);
    uint64_t cycles = simulator.run();
    *stalls = updater->stats().get("stall.rmw_hazard");
    return cycles;
}

} // namespace

int
main()
{
    std::printf("Ablation: RMW hazard interlock cost\n\n");

    // Part 1: stall share inside a real BQSR run.
    auto workload = bench::makeBenchWorkload(bench::envPairs() / 2);
    core::BqsrAccelConfig cfg;
    cfg.numPipelines = 8;
    cfg.psize = 65'536;
    auto result =
        core::BqsrAccelerator(cfg).run(workload.reads, workload.genome);
    uint64_t hazard = 0;
    for (const auto &[name, value] : result.info.stats.counters()) {
        if (name.find("rmw_hazard") != std::string::npos)
            hazard += value;
    }
    std::printf("BQSR run: %llu hazard stalls across %llu total cycles "
                "(%.2f%% of cycle budget per updater)\n\n",
                static_cast<unsigned long long>(hazard),
                static_cast<unsigned long long>(result.info.totalCycles),
                100.0 * static_cast<double>(hazard) / 4.0 /
                    static_cast<double>(result.info.totalCycles));

    // Part 2: isolated updater under three address patterns.
    constexpr size_t kN = 20'000;
    std::vector<int64_t> distinct(kN), strided(kN), burst(kN);
    for (size_t i = 0; i < kN; ++i) {
        distinct[i] = static_cast<int64_t>(i % 1024);
        strided[i] = static_cast<int64_t>((i % 3) * 7);
        burst[i] = 42;
    }
    struct Case {
        const char *name;
        const std::vector<int64_t> *addrs;
    } cases[] = {
        {"distinct addresses", &distinct},
        {"cycling 3 addresses", &strided},
        {"same-address burst", &burst},
    };
    std::printf("%-22s %12s %12s %14s\n", "pattern", "cycles", "stalls",
                "flits/cycle");
    for (const auto &c : cases) {
        uint64_t stalls = 0;
        uint64_t cycles = runUpdater(*c.addrs, &stalls);
        std::printf("%-22s %12llu %12llu %14.3f\n", c.name,
                    static_cast<unsigned long long>(cycles),
                    static_cast<unsigned long long>(stalls),
                    static_cast<double>(kN) /
                        static_cast<double>(cycles));
    }
    std::printf("\nthe interlock serialises same-address updates to one "
                "per three cycles (read/modify/write), the price of "
                "exact counts; mixed genomic streams stay near one "
                "update per cycle.\n");
    return 0;
}
